"""Indoor room model.

The paper evaluates in two rooms: a 13.75 m x 10.50 m laboratory full of
file cabinets and desks (high multipath) and an 8.75 m x 7.50 m empty
hall (low multipath).  A :class:`Room` is a rectangle plus a set of
static scatterers (furniture) each of which both reflects energy and
blocks line-of-sight paths that cross it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.shapes import Rectangle, Segment
from repro.geometry.vec import Vec2


@dataclass(frozen=True)
class Scatterer:
    """A static reflective object (cabinet, desk, metal shelf).

    Attributes:
        position: scatterer centre.
        radius: blockage radius in metres.
        reflectivity: amplitude reflection coefficient in ``[0, 1]``.
    """

    position: Vec2
    radius: float
    reflectivity: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.reflectivity <= 1.0:
            raise ValueError("reflectivity must be in [0, 1]")
        if self.radius <= 0.0:
            raise ValueError("radius must be positive")


@dataclass(frozen=True)
class Room:
    """A rectangular room with reflective walls and furniture scatterers.

    Attributes:
        bounds: the floor rectangle in metres.
        wall_reflectivity: amplitude reflection coefficient of the walls.
        scatterers: static furniture acting as extra reflectors/blockers.
        name: label used in reports (e.g. ``"laboratory"``).
    """

    bounds: Rectangle
    wall_reflectivity: float = 0.45
    scatterers: tuple[Scatterer, ...] = field(default_factory=tuple)
    name: str = "room"

    def __post_init__(self) -> None:
        if not 0.0 <= self.wall_reflectivity <= 1.0:
            raise ValueError("wall_reflectivity must be in [0, 1]")
        for s in self.scatterers:
            if not self.bounds.contains(s.position):
                raise ValueError(f"scatterer at {s.position} lies outside the room")

    def contains(self, p: Vec2, margin: float = 0.0) -> bool:
        """True when ``p`` is inside the floor rectangle."""
        return self.bounds.contains(p, margin)

    def blockers_on(self, seg: Segment, exclude: Vec2 | None = None) -> int:
        """Number of static scatterers whose disc the segment crosses.

        Args:
            seg: the propagation segment.
            exclude: a scatterer position to ignore (used when the path
                terminates *at* that scatterer).

        Returns:
            Count of crossed scatterer discs.
        """
        count = 0
        for s in self.scatterers:
            if exclude is not None and s.position.distance_to(exclude) < 1e-9:
                continue
            if seg.intersects_circle(s.position, s.radius):
                count += 1
        return count


def make_laboratory(seed: int = 7) -> Room:
    """The high-multipath room used in the paper (13.75 m x 10.50 m).

    Furniture is drawn deterministically from ``seed`` so experiments
    are reproducible while still filling the room irregularly, the way
    Fig. 7(c) shows cabinets and desks along the walls and in the middle.
    """
    rng = np.random.default_rng(seed)
    bounds = Rectangle(0.0, 0.0, 13.75, 10.50)
    scatterers = []
    for _ in range(10):
        pos = Vec2(
            float(rng.uniform(0.8, bounds.x1 - 0.8)),
            float(rng.uniform(0.8, bounds.y1 - 0.8)),
        )
        scatterers.append(
            Scatterer(
                position=pos,
                radius=float(rng.uniform(0.25, 0.55)),
                reflectivity=float(rng.uniform(0.35, 0.7)),
            )
        )
    return Room(
        bounds=bounds,
        wall_reflectivity=0.5,
        scatterers=tuple(scatterers),
        name="laboratory",
    )


def make_hall() -> Room:
    """The low-multipath empty hall (8.75 m x 7.50 m, no furniture)."""
    return Room(
        bounds=Rectangle(0.0, 0.0, 8.75, 7.50),
        wall_reflectivity=0.35,
        scatterers=(),
        name="hall",
    )


def make_open_space() -> Room:
    """A huge anechoic-like space: walls so far away reflections vanish.

    Used by unit tests that need a single-path ground truth.
    """
    return Room(
        bounds=Rectangle(-500.0, -500.0, 500.0, 500.0),
        wall_reflectivity=0.0,
        scatterers=(),
        name="open-space",
    )
