"""Gaussian-process classifier (Fig. 9 baseline).

One-vs-rest GP *regression* on the +/-1 class indicators with an RBF
kernel, predicting the argmax posterior mean — a standard lightweight
surrogate for the Laplace-approximated GPC (documented as a deviation
in DESIGN.md).  The Cholesky factorisation is shared across the k
output columns, so fitting costs one ``O(n^3)`` decomposition.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from repro.ml.base import Classifier, LabelEncoder, validate_xy


class GaussianProcessClassifier(Classifier):
    """OvR GP-regression classifier with an RBF kernel.

    Args:
        length_scale: RBF length scale; ``None`` uses the median
            pairwise-distance heuristic.
        noise: observation noise variance added to the kernel diagonal.
    """

    def __init__(self, length_scale: float | None = None, noise: float = 0.1) -> None:
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.length_scale = length_scale
        self.noise = noise
        self._encoder = LabelEncoder()
        self._x: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._scale: float = 1.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d2 = (
            np.sum(a**2, axis=1)[:, None]
            - 2.0 * a @ b.T
            + np.sum(b**2, axis=1)[None, :]
        )
        return np.exp(-0.5 * np.maximum(d2, 0.0) / self._scale**2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcessClassifier":
        """Fit the classifier; returns ``self``."""
        x, y = validate_xy(x, y)
        ids = self._encoder.fit_transform(y)
        k = self._encoder.n_classes
        if self.length_scale is not None:
            self._scale = self.length_scale
        else:
            sample = x[:: max(1, len(x) // 64)]
            d2 = (
                np.sum(sample**2, axis=1)[:, None]
                - 2.0 * sample @ sample.T
                + np.sum(sample**2, axis=1)[None, :]
            )
            med = float(np.median(np.sqrt(np.maximum(d2, 0.0))))
            self._scale = med if med > 0 else 1.0
        gram = self._kernel(x, x) + self.noise * np.eye(len(x))
        targets = np.where(ids[:, None] == np.arange(k)[None, :], 1.0, -1.0)
        factor = cho_factor(gram)
        self._alpha = cho_solve(factor, targets)
        self._x = x
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Posterior-mean indicator scores, ``(n, k)``."""
        if self._x is None or self._alpha is None:
            raise RuntimeError("classifier not fitted")
        return self._kernel(np.asarray(x, dtype=np.float64), self._x) @ self._alpha

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class ids for ``x``, shape ``(B,)``."""
        return self._encoder.inverse(self.decision_function(x).argmax(axis=1))
