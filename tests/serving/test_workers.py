"""Process shard workers: RPC, crash detection, stream reassignment."""

from __future__ import annotations

import pytest

from repro.serving import (
    FleetServer,
    ProcessShardWorker,
    WorkerCrashedError,
)

from .conftest import make_factory, make_log


@pytest.fixture
def worker():
    w = ProcessShardWorker(0, make_factory(), rpc_timeout_s=60.0)
    yield w
    w.stop()


class TestProcessWorkerRPC:
    def test_round_trip_serving(self, worker):
        worker.add_stream("s0")
        n = worker.submit("s0", make_log(n=1500, seed=0, duration_s=10.0))
        assert n == 4
        assert worker.queue_depths() == {"s0": 4}
        result = worker.tick()
        assert len(result.decisions["s0"]) == 4
        assert result.depths == {"s0": 0}
        assert worker.stream_ids() == ["s0"]

    def test_large_log_crosses_process_boundary(self, worker):
        worker.add_stream("s0")
        # ~56 bytes/read x 3000 reads > the shared-memory threshold.
        n = worker.submit("s0", make_log(n=3000, seed=1, duration_s=10.0))
        assert n == 4
        result = worker.tick()
        assert sum(len(ds) for ds in result.decisions.values()) == 4

    def test_worker_error_surfaces_without_killing_worker(self, worker):
        with pytest.raises(RuntimeError, match="already admitted") as excinfo:
            worker.add_stream("s0")
            worker.add_stream("s0")
        assert not isinstance(excinfo.value, WorkerCrashedError)
        assert worker.alive()

    def test_crash_detected_on_next_call(self, worker):
        worker.add_stream("s0")
        worker.crash()
        assert not worker.alive()
        with pytest.raises(WorkerCrashedError):
            worker.queue_depths()

    def test_stop_is_idempotent(self):
        w = ProcessShardWorker(0, make_factory())
        w.stop()
        w.stop()
        assert not w.alive()


class TestCrashRecovery:
    def test_fleet_reassigns_streams_and_keeps_serving(self):
        fleet = FleetServer(
            make_factory(), capacity=4, n_shards=2, mode="process"
        )
        try:
            for i in range(4):
                fleet.admit(f"s{i}")
            log = make_log(n=1500, seed=0, duration_s=10.0)
            for i in range(4):
                fleet.submit(f"s{i}", log)
            first = fleet.drain()
            assert all(len(ds) == 4 for ds in first.values())

            victims = set(fleet.workers[0].stream_ids())
            assert victims
            fleet.workers[0].crash()
            assert not fleet.workers[0].alive()

            fleet.tick()  # detects the corpse, respawns, reassigns
            health = fleet.health()
            assert health.reassigned_total == len(victims)
            assert fleet.workers[0].alive()
            assert set(fleet.workers[0].stream_ids()) == victims

            # The reassigned streams serve again on the replacement.
            for i in range(4):
                fleet.submit(f"s{i}", log)
            second = fleet.drain()
            assert set(second) == {f"s{i}" for i in range(4)}
            assert all(len(ds) == 4 for ds in second.values())
        finally:
            fleet.stop()

    def test_crash_only_loses_the_dead_shards_queue(self):
        fleet = FleetServer(
            make_factory(), capacity=2, n_shards=2, mode="process"
        )
        try:
            fleet.admit("a")  # shard 0
            fleet.admit("b")  # shard 1
            log = make_log(n=1500, seed=0, duration_s=10.0)
            fleet.submit("a", log)
            fleet.submit("b", log)
            fleet.workers[0].crash()
            decisions = fleet.drain()
            # Shard 1's stream is untouched by shard 0's death.
            assert len(decisions.get("b", [])) == 4
            assert "a" not in decisions  # its queue died with the worker
            # ...but the stream itself survives and serves new data.
            fleet.submit("a", log)
            assert len(fleet.drain()["a"]) == 4
        finally:
            fleet.stop()
