"""Phase calibration (Eq. 1) against the simulated reader's offsets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp import PhaseCalibrator, circular_distance, fold_double, uncalibrated
from repro.dsp.angles import circular_median, wrap_pm_pi
from repro.geometry import Vec2, make_open_space
from repro.hardware import Reader, ReaderConfig, UniformLinearArray, make_tag, stationary_scene


def session(seed=0):
    array = UniformLinearArray(center=Vec2(0.0, 0.0))
    reader = Reader(ReaderConfig(array=array), make_open_space(), seed=seed)
    rng = np.random.default_rng(seed)
    scene = stationary_scene([(make_tag("cal", rng), (3.5, 3.5))])
    return reader, scene


def hop_scatter(psi: np.ndarray, log, antenna=0) -> float:
    """Circular std of doubled phases across hops for one antenna."""
    mask = log.antenna == antenna
    values = psi[mask]
    centre = circular_median(values)
    return float(np.std(wrap_pm_pi(values - centre)))


class TestCalibration:
    def test_removes_hop_scatter_on_stationary_tag(self):
        reader, scene = session(1)
        calibrator = PhaseCalibrator.fit(reader.inventory(scene, 20.0))
        runtime = reader.inventory(scene, 6.0)
        raw = uncalibrated(runtime)
        cal = calibrator.calibrate(runtime)
        assert hop_scatter(cal, runtime) < 0.45
        assert hop_scatter(raw, runtime) > 3 * hop_scatter(cal, runtime)

    def test_calibrated_phase_matches_reference_geometry(self):
        # On the calibration scene itself the calibrated phase should sit
        # at the reference-channel median of the bootstrap.
        reader, scene = session(2)
        cal_log = reader.inventory(scene, 20.0)
        calibrator = PhaseCalibrator.fit(cal_log)
        runtime = reader.inventory(scene, 4.0)
        cal = calibrator.calibrate(runtime)
        psi_cal_log = fold_double(cal_log.phase_rad)
        for antenna in range(4):
            ref_mask = (cal_log.antenna == antenna) & (
                cal_log.channel == cal_log.meta.reference_channel
            )
            if not ref_mask.any():
                continue
            expected = circular_median(psi_cal_log[ref_mask])
            got = circular_median(cal[runtime.antenna == antenna])
            assert float(circular_distance(got, expected)) < 0.25

    def test_linear_fit_extrapolates_unseen_channels(self):
        reader, scene = session(3)
        # 8 s bootstrap covers only ~20 of 50 channels.
        calibrator = PhaseCalibrator.fit(reader.inventory(scene, 8.0))
        assert calibrator.coverage(0, 0) < 0.7
        runtime = reader.inventory(scene, 8.0, t0=100.0)
        cal = calibrator.calibrate(runtime)
        # Extrapolated channels keep the scatter low-ish.
        assert hop_scatter(cal, runtime) < 0.8

    def test_full_bootstrap_covers_all_channels(self):
        reader, scene = session(4)
        calibrator = PhaseCalibrator.fit(reader.inventory(scene, 20.0))
        assert calibrator.coverage(0, 0) > 0.9

    def test_missing_tag_passthrough(self):
        reader, scene = session(5)
        calibrator = PhaseCalibrator.fit(reader.inventory(scene, 20.0))
        rng = np.random.default_rng(9)
        other = stationary_scene([(make_tag("cal", rng), (3.5, 3.5)),
                                  (make_tag("new", rng), (2.0, 4.0))])
        runtime = reader.inventory(other, 2.0)
        cal = calibrator.calibrate(runtime)
        # Tag 1 was never calibrated: its doubled phases pass through
        # without offset removal.
        mask = runtime.tag_index == 1
        np.testing.assert_allclose(cal[mask], fold_double(runtime.phase_rad)[mask])

    def test_empty_log_rejected(self):
        reader, scene = session(6)
        log = reader.inventory(scene, 4.0)
        with pytest.raises(ValueError):
            PhaseCalibrator.fit(log.select(np.zeros(log.n_reads, dtype=bool)))

    def test_output_range(self):
        reader, scene = session(7)
        calibrator = PhaseCalibrator.fit(reader.inventory(scene, 20.0))
        cal = calibrator.calibrate(reader.inventory(scene, 2.0))
        assert (cal >= 0).all() and (cal < 2 * np.pi).all()


class TestUncalibrated:
    def test_is_truly_raw(self):
        """The Fig. 10 baseline must keep the pi ambiguity: raw phases,
        not the folded/doubled representation calibration works in."""
        reader, scene = session(8)
        log = reader.inventory(scene, 2.0)
        np.testing.assert_allclose(uncalibrated(log), log.phase_rad)
        # Raw phases still carry the ambiguity: doubling them changes
        # the values (they are not already folded).
        assert not np.allclose(uncalibrated(log), fold_double(log.phase_rad))
