"""Flow-aware lint rule packs built on :mod:`repro.analysis.dataflow`.

Importing this package registers the project-scope rules:

* :mod:`.dtypeflow` — RPR012, narrow-float discipline with
  ``inference_mode()`` scopes;
* :mod:`.concurrency` — RPR013/RPR014, lockset approximation over the
  serving/runtime shared state;
* :mod:`.shapecontract` — RPR015, ``shape: (...)`` docstring contracts
  checked at call sites.
"""

from repro.analysis.packs.concurrency import BlockingUnderLockRule, LocksetRule
from repro.analysis.packs.dtypeflow import DtypeFlowRule
from repro.analysis.packs.shapecontract import ShapeContractRule

__all__ = [
    "BlockingUnderLockRule",
    "DtypeFlowRule",
    "LocksetRule",
    "ShapeContractRule",
]
