"""Vec2 algebra, including hypothesis-checked identities."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Vec2

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def vecs():
    return st.builds(Vec2, finite, finite)


class TestBasicAlgebra:
    def test_add_sub_roundtrip(self):
        a, b = Vec2(1.0, 2.0), Vec2(-3.0, 0.5)
        assert (a + b) - b == a

    def test_scalar_multiply(self):
        assert Vec2(1.0, -2.0) * 3 == Vec2(3.0, -6.0)
        assert 3 * Vec2(1.0, -2.0) == Vec2(3.0, -6.0)

    def test_division(self):
        assert Vec2(2.0, 4.0) / 2 == Vec2(1.0, 2.0)

    def test_negation(self):
        assert -Vec2(1.0, -2.0) == Vec2(-1.0, 2.0)

    def test_norm(self):
        assert Vec2(3.0, 4.0).norm() == pytest.approx(5.0)
        assert Vec2(3.0, 4.0).norm_sq() == pytest.approx(25.0)

    def test_distance(self):
        assert Vec2(0, 0).distance_to(Vec2(3, 4)) == pytest.approx(5.0)

    def test_dot_and_cross(self):
        assert Vec2(1, 0).dot(Vec2(0, 1)) == 0.0
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1.0

    def test_perp_is_orthogonal(self):
        v = Vec2(2.5, -1.5)
        assert v.dot(v.perp()) == pytest.approx(0.0)

    def test_normalized_unit_length(self):
        assert Vec2(5.0, 0.0).normalized() == Vec2(1.0, 0.0)

    def test_normalized_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec2(0.0, 0.0).normalized()

    def test_rotation_quarter_turn(self):
        r = Vec2(1.0, 0.0).rotated(math.pi / 2)
        assert r.x == pytest.approx(0.0, abs=1e-12)
        assert r.y == pytest.approx(1.0)

    def test_angle(self):
        assert Vec2(0.0, 2.0).angle() == pytest.approx(math.pi / 2)

    def test_lerp_endpoints_and_middle(self):
        a, b = Vec2(0, 0), Vec2(2, 4)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec2(1, 2)

    def test_as_tuple(self):
        assert Vec2(1.5, -2.5).as_tuple() == (1.5, -2.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Vec2(0, 0).x = 1.0  # type: ignore[misc]


class TestHypothesisIdentities:
    @given(vecs(), vecs())
    def test_addition_commutes(self, a, b):
        assert (a + b).x == pytest.approx((b + a).x)
        assert (a + b).y == pytest.approx((b + a).y)

    @given(vecs())
    def test_rotation_preserves_norm(self, v):
        assert v.rotated(1.234).norm() == pytest.approx(v.norm(), rel=1e-9, abs=1e-9)

    @given(vecs(), vecs())
    def test_triangle_inequality(self, a, b):
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6

    @given(vecs(), vecs())
    def test_cross_antisymmetric(self, a, b):
        assert a.cross(b) == pytest.approx(-b.cross(a), rel=1e-9, abs=1e-6)

    @given(vecs())
    def test_double_perp_negates(self, v):
        assert v.perp().perp() == Vec2(-v.x, -v.y)
