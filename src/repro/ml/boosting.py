"""AdaBoost (Fig. 9's "Adaptive Boosting"): SAMME over shallow trees."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, LabelEncoder, validate_xy
from repro.ml.tree import DecisionTreeClassifier


class AdaBoostClassifier(Classifier):
    """Multi-class AdaBoost (SAMME) with depth-limited CART learners.

    Args:
        n_estimators: boosting rounds.
        max_depth: base-learner depth (1 = stumps).
        learning_rate: shrinkage on each round's vote weight.
        max_features: per-split feature budget of the base learners
            (``"sqrt"`` keeps wide spectrum features tractable).
        rng: weighted-resampling randomness.
    """

    def __init__(
        self,
        n_estimators: int = 40,
        max_depth: int = 1,
        learning_rate: float = 1.0,
        max_features: int | str | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self._encoder = LabelEncoder()
        self._learners: list[DecisionTreeClassifier] = []
        self._votes: list[float] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "AdaBoostClassifier":
        """Fit the classifier; returns ``self``."""
        x, y = validate_xy(x, y)
        self._encoder.fit(y)
        k = self._encoder.n_classes
        n = len(x)
        weights = np.full(n, 1.0 / n)
        self._learners, self._votes = [], []
        for _round in range(self.n_estimators):
            # Weighted fitting via resampling keeps the base learner
            # weight-agnostic.
            idx = self.rng.choice(n, size=n, p=weights)
            learner = DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features=self.max_features,
                rng=np.random.default_rng(self.rng.integers(2**31)),
            )
            learner.fit(x[idx], y[idx])
            pred = learner.predict(x)
            miss = pred != y
            err = float(np.sum(weights[miss]))
            err = min(max(err, 1e-10), 1.0 - 1e-10)
            if err >= 1.0 - 1.0 / k:
                # Worse than chance: skip this round.
                continue
            vote = self.learning_rate * (np.log((1.0 - err) / err) + np.log(k - 1.0))
            weights = weights * np.exp(vote * miss)
            weights = weights / weights.sum()
            self._learners.append(learner)
            self._votes.append(vote)
            if err < 1e-9:
                break
        if not self._learners:
            # Degenerate data: fall back to a single unweighted tree.
            learner = DecisionTreeClassifier(max_depth=self.max_depth)
            learner.fit(x, y)
            self._learners = [learner]
            self._votes = [1.0]
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class ids for ``x``, shape ``(B,)``."""
        if not self._learners:
            raise RuntimeError("classifier not fitted")
        classes = self._encoder.classes_
        assert classes is not None
        col = {c: i for i, c in enumerate(classes.tolist())}
        scores = np.zeros((len(x), len(classes)))
        for learner, vote in zip(self._learners, self._votes):
            pred = learner.predict(x)
            for row, label in enumerate(pred.tolist()):
                scores[row, col[label]] += vote
        return classes[scores.argmax(axis=1)]
