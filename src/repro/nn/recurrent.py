"""Long Short-Term Memory layer with full backpropagation through time.

The paper stacks two LSTM layers of 32 memory cells on top of the CNN
encoder (Section IV-B.2); the gating follows Hochreiter & Schmidhuber
with the usual forget-gate bias of 1 so memories persist early in
training.

The forward pass is *fused*: the input-gate contribution of every
timestep is one GEMM (``x`` reshaped to ``(B*T, D)`` against the packed
``(D, 4H)`` input weights, bias folded in), so the Python timestep loop
only carries the recurrence ``h @ W_hh`` — a ``(B, H) @ (H, 4H)``
matmul plus elementwise gate math per step.  Backward mirrors this: the
per-step loop only produces the packed gate deltas; all three parameter
gradients and the input gradient collapse into one stacked GEMM each
afterwards.  The pre-fusion per-timestep loop is retained as
:meth:`LSTM.forward_reference` / :meth:`LSTM.backward_reference` — the
parity oracle the profile harness and the equivalence tests check the
fused path against (rtol gate, same spirit as the 1e-12 DSP one).
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import glorot_uniform, orthogonal
from repro.nn.module import Module, Parameter
from repro.obs.tracing import span


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class LSTM(Module):
    """Sequence-to-sequence LSTM: ``(B, T, D) -> (B, T, H)``.

    Gate order in the packed weight matrices is (input, forget, cell,
    output).  The layer is dtype-polymorphic: activations follow
    ``np.result_type(input, weights)``, so a cast-once float32 serve
    model runs narrow end to end while training stays float64.
    """

    def __init__(
        self, in_dim: int, hidden: int, rng: np.random.Generator, name: str = "lstm"
    ) -> None:
        self.in_dim = in_dim
        self.hidden = hidden
        self.w_x = Parameter(
            glorot_uniform((in_dim, 4 * hidden), rng), name=f"{name}.Wx"
        )
        w_h = np.concatenate(
            [orthogonal((hidden, hidden), rng) for _ in range(4)], axis=1
        )
        self.w_h = Parameter(w_h, name=f"{name}.Wh")
        bias = np.zeros(4 * hidden)
        bias[hidden : 2 * hidden] = 1.0  # forget-gate bias
        self.bias = Parameter(bias, name=f"{name}.b")
        self._cache: dict[str, np.ndarray] | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Fused forward pass (caches what :meth:`backward` needs).

        One GEMM computes ``x @ W_ih + b`` for *all* timesteps up
        front; the timestep loop then only adds the recurrent
        ``h @ W_hh`` term and applies the gate nonlinearities.

        Args:
            x: input sequence, shape: ``(B, T, D)``.

        Returns:
            Hidden-state sequence, shape: ``(B, T, H)``.

        Raises:
            ValueError: when ``x`` is not ``(B, T, in_dim)``.
        """
        if x.ndim != 3 or x.shape[2] != self.in_dim:
            raise ValueError(f"expected (B, T, {self.in_dim}), got {x.shape}")
        batch, steps, _dim = x.shape
        hid = self.hidden
        w_x = self.w_x.value
        w_h = self.w_h.value
        dtype = np.result_type(x.dtype, w_x.dtype)
        with span("nn.fused", batch=batch, steps=steps):
            # The fused input-gate GEMM: every timestep's x @ W_ih (+ bias)
            # in one matmul instead of T small ones.
            gates = x.reshape(batch * steps, -1) @ w_x
            gates += self.bias.value.astype(dtype, copy=False)
            gates = gates.reshape(batch, steps, 4 * hid)

            h = np.zeros((batch, hid), dtype=dtype)
            c = np.zeros((batch, hid), dtype=dtype)
            outputs = np.empty((batch, steps, hid), dtype=dtype)
            g_all = np.empty((batch, steps, hid), dtype=dtype)
            c_prev_all = np.empty((batch, steps, hid), dtype=dtype)
            tanh_c_all = np.empty((batch, steps, hid), dtype=dtype)
            ig = np.empty((batch, hid), dtype=dtype)
            for t in range(steps):
                a = gates[:, t, :]
                a += h @ w_h
                # Cell candidate first (its columns are about to be
                # overwritten by the slab-wide sigmoid below).
                g = g_all[:, t, :]
                np.tanh(a[:, 2 * hid : 3 * hid], out=g)
                # In-place sigmoid over the whole slab via
                # 0.5 * (tanh(0.5 a) + 1): stable for large |a|, no
                # temporaries, no boolean-mask copies.
                a *= 0.5
                np.tanh(a, out=a)
                a += 1.0
                a *= 0.5
                c_prev_all[:, t, :] = c
                np.multiply(a[:, :hid], g, out=ig)
                np.multiply(c, a[:, hid : 2 * hid], out=c)
                c += ig
                tanh_c = tanh_c_all[:, t, :]
                np.tanh(c, out=tanh_c)
                np.multiply(a[:, 3 * hid :], tanh_c, out=h)
                outputs[:, t, :] = h
        self._cache = {
            "x": x,
            "outputs": outputs,
            "gates": gates,
            "g": g_all,
            "c_prev": c_prev_all,
            "tanh_c": tanh_c_all,
        }
        self._x_shape = x.shape
        return outputs

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Batch-vectorised backprop through the cached fused forward.

        The reversed timestep loop only produces the packed gate deltas
        ``da``; the three parameter gradients and the input gradient
        are then each one stacked GEMM over all ``B*T`` rows.

        Args:
            grad: upstream gradient, shape: ``(B, T, H)``.

        Returns:
            Input gradient, shape: ``(B, T, D)``.

        Raises:
            RuntimeError: when called before :meth:`forward`.
        """
        if self._cache is None or self._x_shape is None:
            raise RuntimeError("backward before forward")
        batch, steps, _dim = self._x_shape
        hid = self.hidden
        cache = self._cache
        gates, g_all = cache["gates"], cache["g"]
        c_prev_all, tanh_c_all = cache["c_prev"], cache["tanh_c"]
        w_h_t = self.w_h.value.T
        da_all = np.empty((batch, steps, 4 * hid), dtype=gates.dtype)
        dh_next = np.zeros((batch, hid), dtype=gates.dtype)
        dc_next = np.zeros((batch, hid), dtype=gates.dtype)
        for t in reversed(range(steps)):
            slab = gates[:, t, :]
            i, f, o = slab[:, :hid], slab[:, hid : 2 * hid], slab[:, 3 * hid :]
            g = g_all[:, t]
            tanh_c = tanh_c_all[:, t]
            dh = grad[:, t, :] + dh_next
            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c**2) + dc_next
            di = dc * g
            df = dc * c_prev_all[:, t]
            dg = dc * i
            dc_next = dc * f
            da = da_all[:, t, :]
            da[:, :hid] = di * i * (1.0 - i)
            da[:, hid : 2 * hid] = df * f * (1.0 - f)
            da[:, 2 * hid : 3 * hid] = dg * (1.0 - g**2)
            da[:, 3 * hid :] = do * o * (1.0 - o)
            dh_next = da @ w_h_t
        flat_da = da_all.reshape(batch * steps, 4 * hid)
        x = cache["x"]
        self.w_x.grad += x.reshape(batch * steps, -1).T @ flat_da
        # h_prev over all steps is the output sequence shifted right by
        # one frame with a zero initial state.
        h_prev = np.zeros_like(cache["outputs"])
        h_prev[:, 1:, :] = cache["outputs"][:, :-1, :]
        self.w_h.grad += h_prev.reshape(batch * steps, hid).T @ flat_da
        self.bias.grad += flat_da.sum(axis=0)
        dx = (flat_da @ self.w_x.value.T).reshape(self._x_shape)
        return dx

    # ------------------------------------------------------------------
    # Scalar reference path (pre-fusion), kept as the parity oracle.

    def forward_reference(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Per-timestep reference forward (the pre-fusion loop).

        Computes ``x_t @ W_ih + h @ W_hh + b`` step by step.  Kept so
        the profile harness and the equivalence tests can assert the
        fused :meth:`forward` against it under an rtol parity gate;
        never used on the serving hot path.

        Args:
            x: input sequence, shape: ``(B, T, D)``.

        Returns:
            Hidden-state sequence, shape: ``(B, T, H)``.

        Raises:
            ValueError: when ``x`` is not ``(B, T, in_dim)``.
        """
        if x.ndim != 3 or x.shape[2] != self.in_dim:
            raise ValueError(f"expected (B, T, {self.in_dim}), got {x.shape}")
        batch, steps, _dim = x.shape
        hid = self.hidden
        dtype = np.result_type(x.dtype, self.w_x.value.dtype)
        h = np.zeros((batch, hid), dtype=dtype)
        c = np.zeros((batch, hid), dtype=dtype)
        outputs = np.empty((batch, steps, hid), dtype=dtype)
        cache: list[dict[str, np.ndarray]] = []
        for t in range(steps):
            x_t = x[:, t, :]
            a = x_t @ self.w_x.value + h @ self.w_h.value + self.bias.value
            i = _sigmoid(a[:, :hid])
            f = _sigmoid(a[:, hid : 2 * hid])
            g = np.tanh(a[:, 2 * hid : 3 * hid])
            o = _sigmoid(a[:, 3 * hid :])
            c_new = f * c + i * g
            tanh_c = np.tanh(c_new)
            h_new = o * tanh_c
            cache.append(
                {
                    "x": x_t,
                    "h_prev": h,
                    "c_prev": c,
                    "i": i,
                    "f": f,
                    "g": g,
                    "o": o,
                    "tanh_c": tanh_c,
                }
            )
            h, c = h_new, c_new
            outputs[:, t, :] = h
        self._ref_cache = cache
        self._ref_x_shape = x.shape
        return outputs

    def backward_reference(self, grad: np.ndarray) -> np.ndarray:
        """Per-timestep reference backward matching :meth:`forward_reference`.

        Args:
            grad: upstream gradient, shape: ``(B, T, H)``.

        Returns:
            Input gradient, shape: ``(B, T, D)``.

        Raises:
            RuntimeError: when called before :meth:`forward_reference`.
        """
        cache = getattr(self, "_ref_cache", None)
        x_shape = getattr(self, "_ref_x_shape", None)
        if cache is None or x_shape is None:
            raise RuntimeError("backward_reference before forward_reference")
        batch, steps, _dim = x_shape
        hid = self.hidden
        dx = np.zeros(x_shape)
        dh_next = np.zeros((batch, hid))
        dc_next = np.zeros((batch, hid))
        for t in reversed(range(steps)):
            step = cache[t]
            dh = grad[:, t, :] + dh_next
            do = dh * step["tanh_c"]
            dc = dh * step["o"] * (1.0 - step["tanh_c"] ** 2) + dc_next
            di = dc * step["g"]
            df = dc * step["c_prev"]
            dg = dc * step["i"]
            dc_next = dc * step["f"]
            da = np.concatenate(
                [
                    di * step["i"] * (1.0 - step["i"]),
                    df * step["f"] * (1.0 - step["f"]),
                    dg * (1.0 - step["g"] ** 2),
                    do * step["o"] * (1.0 - step["o"]),
                ],
                axis=1,
            )
            self.w_x.grad += step["x"].T @ da
            self.w_h.grad += step["h_prev"].T @ da
            self.bias.grad += da.sum(axis=0)
            dx[:, t, :] = da @ self.w_x.value.T
            dh_next = da @ self.w_h.value.T
        return dx


class LastStep(Module):
    """Select the final timestep: ``(B, T, H) -> (B, H)``."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        self._shape = x.shape
        return x[:, -1, :]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._shape is None:
            raise RuntimeError("backward before forward")
        dx = np.zeros(self._shape)
        dx[:, -1, :] = grad
        return dx
