"""Ingest retries: flaky reader transports and hub degradation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.geometry import Vec2, make_open_space
from repro.hardware import (
    AntennaHub,
    Reader,
    ReaderConfig,
    UniformLinearArray,
    make_tag,
    merge_hub_features,
    stationary_scene,
)
from repro.runtime import RetryExhaustedError, RetryPolicy

FAST_POLICY = RetryPolicy(max_attempts=4, base_delay_s=0.0, max_delay_s=0.0)


class FlakyReader(Reader):
    """A reader whose transport drops the first ``fail_attempts`` calls."""

    def __init__(self, *args, fail_attempts: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fail_attempts = fail_attempts
        self.attempts = 0

    def _inventory_once(self, scene, duration_s, t0=0.0):
        self.attempts += 1
        if self.attempts <= self.fail_attempts:
            raise ConnectionError(f"LLRP connection dropped #{self.attempts}")
        return super()._inventory_once(scene, duration_s, t0)


def make_flaky(fail_attempts: int, policy: RetryPolicy | None) -> FlakyReader:
    array = UniformLinearArray(center=Vec2(0.0, 0.0))
    return FlakyReader(
        ReaderConfig(array=array),
        make_open_space(),
        seed=0,
        retry_policy=policy,
        fail_attempts=fail_attempts,
    )


def one_tag_scene():
    rng = np.random.default_rng(0)
    return stationary_scene([(make_tag("T0", rng), (3.0, 3.0))])


class TestReaderRetry:
    def test_transient_failures_are_retried_to_success(self):
        reader = make_flaky(fail_attempts=3, policy=FAST_POLICY)
        log = reader.inventory(one_tag_scene(), duration_s=1.0)
        assert reader.attempts == 4
        assert log.n_reads > 0

    def test_retried_log_equals_the_unflaky_log(self):
        # Retries must not perturb the session RNG stream: the log
        # after 2 dropped attempts is the log a healthy reader with the
        # same seed produces.
        flaky = make_flaky(fail_attempts=2, policy=FAST_POLICY)
        clean = make_flaky(fail_attempts=0, policy=None)
        log_a = flaky.inventory(one_tag_scene(), duration_s=1.0)
        log_b = clean.inventory(one_tag_scene(), duration_s=1.0)
        assert np.array_equal(log_a.phase_rad, log_b.phase_rad)
        assert np.array_equal(log_a.timestamp_s, log_b.timestamp_s)

    def test_exhaustion_surfaces_with_stage_attribution(self):
        reader = make_flaky(fail_attempts=99, policy=FAST_POLICY)
        with pytest.raises(RetryExhaustedError) as err:
            reader.inventory(one_tag_scene(), duration_s=1.0)
        assert err.value.stage == "ingest.inventory"
        assert err.value.attempts == FAST_POLICY.max_attempts
        assert isinstance(err.value.__cause__, ConnectionError)

    def test_no_policy_fails_on_first_transport_error(self):
        reader = make_flaky(fail_attempts=1, policy=None)
        with pytest.raises(ConnectionError):
            reader.inventory(one_tag_scene(), duration_s=1.0)
        assert reader.attempts == 1

    def test_non_transient_errors_are_not_retried(self):
        # Validation errors are not transport flavoured: one attempt,
        # raw propagation, no retry burn.
        reader = make_flaky(fail_attempts=0, policy=FAST_POLICY)
        with pytest.raises(ValueError):
            reader.inventory(one_tag_scene(), duration_s=0.0)
        assert reader.attempts == 1


class TestHubDegradation:
    def _hub(self, degrade: bool) -> AntennaHub:
        arrays = (
            UniformLinearArray(center=Vec2(0.0, 0.0)),
            UniformLinearArray(center=Vec2(4.0, 0.0)),
        )
        hub = AntennaHub(
            room=make_open_space(),
            arrays=arrays,
            retry_policy=FAST_POLICY,
            degrade_on_member_failure=degrade,
        )
        return hub

    def _break_member(self, hub: AntennaHub, index: int) -> None:
        def always_down(scene, duration_s, t0=0.0):
            raise ConnectionError("member offline")

        hub.readers[index]._inventory_once = always_down

    def test_degraded_member_becomes_none(self):
        obs.enable()
        hub = self._hub(degrade=True)
        self._break_member(hub, 1)
        logs = hub.inventory(one_tag_scene(), duration_s=1.0)
        assert logs[0] is not None and logs[0].n_reads > 0
        assert logs[1] is None
        metrics = {
            m.name: m.value
            for m in obs.get_registry().collect()
            if m.kind == "counter"
        }
        assert metrics["runtime.ingest.member_lost_total"] == 1.0
        obs.disable()
        obs.reset()

    def test_without_degradation_the_failure_propagates(self):
        hub = self._hub(degrade=False)
        self._break_member(hub, 1)
        with pytest.raises(RetryExhaustedError):
            hub.inventory(one_tag_scene(), duration_s=1.0)

    def test_merge_zero_fills_the_lost_view(self):
        from repro.dsp.features import M2AIFeaturizer

        hub = self._hub(degrade=True)
        self._break_member(hub, 1)
        logs = hub.inventory(one_tag_scene(), duration_s=1.0)
        featurizer = M2AIFeaturizer()
        from repro.dsp.calibration import uncalibrated

        per_array = [
            featurizer.transform(log, uncalibrated(log), n_frames=2)
            if log is not None
            else None
            for log in logs
        ]
        merged = merge_hub_features(per_array)
        live = {k: v for k, v in merged.channels.items() if k.endswith("@0")}
        dead = {k: v for k, v in merged.channels.items() if k.endswith("@1")}
        assert live and dead
        assert any(np.abs(v).sum() > 0 for v in live.values())
        assert all(np.abs(v).sum() == 0 for v in dead.values())
