"""Fig. 12: laboratory (high multipath) vs empty hall (low multipath).

The paper finds the two environments perform within a couple of points
of each other — multipath is an asset, not an obstacle, for M2AI."""

from repro.eval import run_fig12


def test_fig12_environments(run_experiment):
    result = run_experiment(run_fig12)
    measured = result.measured_by_name()
    # Shape check: no environment collapses.
    assert min(measured.values()) > 2.0 / 12.0
