"""Extension: the fault sweep served through the supervised runtime."""

from repro.eval import run_ext_resilience
from repro.eval.robustness import DEFAULT_FAULT_KINDS, DEFAULT_SEVERITIES


def test_ext_resilience_supervised_sweep(run_experiment):
    result = run_experiment(run_ext_resilience)
    measured = result.measured_by_name()

    # Full kind x severity grid, with decided-rate and throughput rows.
    for kind in DEFAULT_FAULT_KINDS:
        for severity in DEFAULT_SEVERITIES:
            decided = measured[f"{kind} s={severity:.1f} decided"]
            assert 0.0 <= decided <= 1.0
            assert measured[f"{kind} s={severity:.1f} throughput"] > 0.0

    # Clean serving must actually decide (the baseline is healthy).
    assert all(
        measured[f"{kind} s=0.0 decided"] == 1.0 for kind in DEFAULT_FAULT_KINDS
    )

    # Transport at severity 0.9 recovers at least some windows through
    # retries, and the predict breaker demonstrably completed a
    # closed -> open -> half-open -> closed cycle.  run_ext_resilience
    # itself raises if any exception escaped the supervisor.
    assert measured["transport s=0.9 delivered rate"] > 0.0
    assert measured["breaker full cycle observed"] == 1.0
