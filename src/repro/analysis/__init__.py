"""Correctness tooling: project-specific lint rules + runtime sanitizer.

Static side: ``python -m repro.analysis.lint src`` runs the RPR rule
set (seeded randomness, forward/backward pairing, export hygiene,
float64 discipline, shape-contract docstrings) and fails CI on any
finding.  Runtime side: :func:`repro.analysis.sanitize.anomaly_detection`
arms NaN/dtype/gradient/shape tripwires across the nn and DSP stacks.

The lint driver (:mod:`repro.analysis.lint`) is deliberately *not*
imported here: it is the ``python -m`` entry point, and importing it
from the package ``__init__`` would make runpy warn about the module
already being in ``sys.modules``.  Import ``repro.analysis.lint``
directly for the programmatic API.
"""

from repro.analysis.rules import RULES, FileContext, Finding, LintRule, register_rule
from repro.analysis.sanitize import AnomalyError, anomaly_detection

__all__ = [
    "AnomalyError",
    "FileContext",
    "Finding",
    "LintRule",
    "RULES",
    "anomaly_detection",
    "register_rule",
]
