"""Extension: multi-tenant fleet serving (batching speedup + isolation)."""

from repro.eval import run_ext_serving

from repro.eval.serving import (
    BATCH_SPEEDUP_FLOOR,
    HEALTHY_UNCHANGED_FLOOR,
    LATENCY_P95_TOLERANCE,
    MAX_STREAMS,
)


def test_ext_serving_contracts(run_experiment):
    result = run_experiment(run_ext_serving)
    measured = result.measured_by_name()
    # The driver already raises on a violated contract; re-assert the
    # headline numbers here so the bench output records them.
    assert measured[f"{MAX_STREAMS} streams speedup"] >= BATCH_SPEEDUP_FLOOR
    assert measured["healthy decisions unchanged"] >= HEALTHY_UNCHANGED_FLOOR
    assert measured["healthy p95 latency ratio"] <= LATENCY_P95_TOLERANCE
