"""Quickstart: simulate a small corpus, train M2AI, evaluate.

Runs the whole stack end to end in a couple of minutes:

1. renders four two-person activity classes through the multipath
   backscatter simulator (calibration bootstrap + activity inventory);
2. preprocesses the LLRP phase stream into pseudospectrum and
   periodogram frames;
3. trains the CNN+LSTM engine and prints held-out accuracy and the
   confusion matrix.

Usage::

    python examples/quickstart.py [--full]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import M2AIConfig, M2AIPipeline
from repro.data import GenerationConfig, SyntheticDatasetGenerator
from repro.motion import SCENARIO_LABELS, SCENARIOS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="use all 12 classes and more samples"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # The default subset picks four *contrastive* scenarios; the
    # first four classes all differ only in person 1's movement
    # and need more data to separate (use --full for all 12).
    labels = SCENARIO_LABELS if args.full else ("A01", "A03", "A07", "A11")
    config = GenerationConfig(
        scenario_labels=labels,
        samples_per_class=12 if args.full else 10,
        duration_s=6.0,
        seed=args.seed,
    )
    print(f"Simulating {len(labels)} activity classes "
          f"x {config.samples_per_class} samples in the {config.environment} ...")
    for label in labels:
        print(f"  {label}: {SCENARIOS[label].description}")

    t0 = time.time()
    dataset = SyntheticDatasetGenerator(config).generate()
    print(f"Simulated + featurised {len(dataset)} samples "
          f"in {time.time() - t0:.0f} s; channels: {dataset.channel_shapes}")

    train, test = dataset.split(0.2, np.random.default_rng(args.seed))
    print(f"Training M2AI (CNN+LSTM) on {len(train)} samples ...")
    t0 = time.time()
    pipeline = M2AIPipeline(M2AIConfig(epochs=35, batch_size=12, seed=args.seed))
    pipeline.fit(train, val=test)
    result = pipeline.evaluate(test)
    print(f"Done in {time.time() - t0:.0f} s.")
    print(f"\nHeld-out accuracy: {result.accuracy:.1%}  "
          f"({len(test)} test samples)")
    print("\nConfusion matrix (prediction rows / actual columns):")
    print(result.confusion.render())


if __name__ == "__main__":
    main()
