"""Fig. 13: reader-to-person distance 1-4 m.

The paper reports no clear correlation between distance and accuracy
inside the harvest range."""

from repro.eval import run_fig13


def test_fig13_distance(run_experiment):
    result = run_experiment(run_fig13)
    values = list(result.measured_by_name().values())
    # Shape check: every distance works (no collapse inside 4 m).
    assert min(values) > 2.0 / 12.0
