"""Graceful degradation: streaming identification under injected faults.

A deployed monitor does not get the clean logs the simulator produces:
ports die, reads drop, phases glitch.  This example trains a compact
monitor, then serves held-out recordings through the streaming path
while injecting increasingly severe faults.  Instead of crashing or
silently guessing, the identifier degrades: it keeps classifying while
it can and emits explicit, reasoned abstentions when it cannot.

Usage::

    python examples/robustness_streaming_demo.py
    python examples/robustness_streaming_demo.py --trace   # + span tree dump

With ``--trace`` the observability layer (`repro.obs`) is armed for the
serving phase: after the fault scenarios run, the example prints the
span tree of the last streaming call (per-window timing down to the
MUSIC/periodogram kernels) and the accumulated counters in Prometheus
text format.
"""

from __future__ import annotations

import argparse

from repro import obs
from repro.core import M2AIConfig, M2AIPipeline
from repro.core.streaming import StreamingIdentifier
from repro.data import GenerationConfig, SyntheticDatasetGenerator
from repro.dsp.calibration import PhaseCalibrator
from repro.eval.robustness import robustness_sweep
from repro.faults import FaultSpec, apply_faults

ACTIVITIES = ("A01", "A03", "A07", "A11")

SCENARIOS = (
    ("clean", []),
    ("one dead port", [FaultSpec("dead_port", 0.4)]),
    ("heavy dropout + phase noise",
     [FaultSpec("dropout", 0.8), FaultSpec("phase_noise", 0.6)]),
    ("array failure (one port left)", [FaultSpec("dead_port", 1.0)]),
)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        action="store_true",
        help="arm repro.obs for the serving phase and dump the span tree",
    )
    args = parser.parse_args(argv)

    config = GenerationConfig(
        scenario_labels=ACTIVITIES,
        samples_per_class=8,
        duration_s=6.0,
        calibration_s=20.0,
        seed=11,
    )
    generator = SyntheticDatasetGenerator(config)
    raw = generator.generate_raw()
    # Recordings come grouped by class: hold out the first of each.
    spc = config.samples_per_class
    held_idx = {k * spc for k in range(len(ACTIVITIES))}
    held_out = [raw[i] for i in sorted(held_idx)]
    training = [s for i, s in enumerate(raw) if i not in held_idx]

    print(f"Training the monitor on {len(training)} clean recordings...")
    pipeline = M2AIPipeline(M2AIConfig(epochs=45, batch_size=8, seed=11))
    pipeline.fit(generator.featurize(training))

    dwell = raw[0].log.meta.dwell_s
    identifier = StreamingIdentifier(
        pipeline, window_s=raw[0].n_frames * dwell, min_reads=32
    )

    if args.trace:
        obs.enable()  # arm after training so the dump covers serving only

    print("\nServing held-out recordings under injected faults:")
    for name, specs in SCENARIOS:
        print(f"\n  -- {name} --")
        for i, sample in enumerate(held_out):
            log = apply_faults(sample.log, specs, seed=i)
            identifier.calibrator = PhaseCalibrator.fit(sample.calibration_log)
            for d in identifier.identify(log):
                if d.abstained:
                    print(f"    truth={sample.label}  ABSTAIN "
                          f"(reason: {d.reason}, {d.n_reads} reads)")
                else:
                    status = "ok " if d.label == sample.label else "MISS"
                    print(f"    truth={sample.label}  predicted={d.label} "
                          f"conf={d.confidence:.2f}  {status}")

    if args.trace:
        roots = obs.get_collector().drain()
        print("\nSpan tree of the last streaming call (wall/CPU per stage):")
        print(obs.render_span_tree(roots[-1:]))
        print("\nAccumulated metrics (Prometheus text format):")
        print(obs.get_registry().to_prometheus(), end="")
        obs.disable()

    print("\nFull severity sweep (accuracy over decided windows / abstain):")
    report = robustness_sweep(
        identifier,
        held_out,
        kinds=("dropout", "dead_port", "phase_noise"),
        severities=(0.0, 0.5, 0.9),
        seed=0,
    )
    print(report.render())


if __name__ == "__main__":
    main()
