"""1-D convolution and pooling (the spectrum-frame encoders).

The paper's CONV-E1/E2/E3 layers slide over the 180-angle axis of the
pseudospectrum frame; 1-D convolution over that axis with the tag axis
as channels realises the same structure.  Implemented as one matmul
per kernel tap over strided views, so memory stays ``O(input)`` — an
im2col buffer is ``K`` times the input and its transpose-copy becomes
the bottleneck at the large batches cross-stream serving produces.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import he_uniform
from repro.nn.module import Module, Parameter


def _out_length(length: int, kernel: int, stride: int, padding: int) -> int:
    out = (length + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"conv output length {out} <= 0 (L={length}, K={kernel}, "
            f"stride={stride}, pad={padding})"
        )
    return out


class Conv1d(Module):
    """Cross-correlation over the last axis: ``(B, C_in, L) -> (B, C_out, L_out)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        name: str = "conv",
    ) -> None:
        if kernel < 1 or stride < 1 or padding < 0:
            raise ValueError("kernel/stride must be >= 1, padding >= 0")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel
        self.weight = Parameter(
            he_uniform((out_channels, in_channels, kernel), rng, fan_in=fan_in),
            name=f"{name}.W",
        )
        self.bias = Parameter(np.zeros(out_channels), name=f"{name}.b")
        self._x_pad: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None
        self._packed: np.ndarray | None = None
        self._packed_key: tuple | None = None

    def _tap_view(self, x_pad: np.ndarray, k: int, l_out: int) -> np.ndarray:
        """Strided view of tap ``k``'s input columns, shape: ``(B, C, L_out)``."""
        return x_pad[:, :, k : k + self.stride * l_out : self.stride]

    def _weight_key(self) -> tuple:
        """Cache key for the pre-packed taps, in the steering-cache style.

        Identity of the weight buffer (data pointer), its layout
        (shape + dtype) and its frozen-ness.  A pack is only *used* when
        the weight is read-only, so a matching key proves the packed
        views still reflect the buffer contents — in-place mutation of
        a frozen array is impossible, and any rebind changes the
        pointer.
        """
        w = self.weight.value
        return (
            w.__array_interface__["data"][0],
            w.shape,
            w.dtype.str,
            bool(w.flags.writeable),
        )

    def pack_weights(self) -> None:
        """Pre-pack per-tap weight matrices for the inference fast path.

        ``weight`` is stored ``(C_out, C, K)``, so the per-tap slice
        ``w[:, :, k]`` the forward matmul consumes is non-contiguous
        (stride ``K`` between row elements) and re-gathered on every
        call.  The pack copies the taps once into a contiguous
        ``(K, C_out, C)`` block — shape: ``(K, C_out, C)`` — frozen
        read-only and keyed on the weight buffer like the
        steering-matrix cache (read-only hits, identity-keyed);
        :func:`repro.nn.module.cast_once` calls this after freezing the
        serve model's weights.  The training path never packs because
        the optimizer mutates weights in place every step, which would
        silently invalidate the views.
        """
        w = self.weight.value
        packed = np.ascontiguousarray(np.moveaxis(w, 2, 0))
        packed.flags.writeable = False
        self._packed = packed
        self._packed_key = self._weight_key()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs).

        Input shape: ``(B, C, L)``; output shape: ``(B, C_out, L_out)``.
        The output dtype follows ``np.result_type(x, weight)``, so a
        cast-once float32 serve model runs narrow end to end while
        float64 training is untouched.
        """
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (B, {self.in_channels}, L), got {x.shape}"
            )
        batch, _c, length = x.shape
        l_out = _out_length(length, self.kernel, self.stride, self.padding)
        if self.padding:
            # Direct zero-buffer fill: np.pad's generality costs more
            # Python time than this whole layer at serve batch sizes.
            x_pad = np.zeros(
                (batch, self.in_channels, length + 2 * self.padding),
                dtype=x.dtype,
            )
            x_pad[:, :, self.padding : self.padding + length] = x
        else:
            x_pad = x
        self._x_pad = x_pad
        self._x_shape = x.shape
        w = self.weight.value  # (C_out, C, K)
        packed = self._packed
        use_packed = (
            packed is not None
            and not training
            and not w.flags.writeable
            and self._packed_key == self._weight_key()
        )
        dtype = np.result_type(x.dtype, w.dtype)
        y = np.empty((batch, self.out_channels, l_out), dtype=dtype)
        y[...] = self.bias.value[:, None].astype(dtype, copy=False)
        for k in range(self.kernel):
            # (C_out, C) @ (B, C, L_out) broadcasts over the batch.
            wk = packed[k] if use_packed else w[:, :, k]
            y += np.matmul(wk, self._tap_view(x_pad, k, l_out))
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._x_pad is None or self._x_shape is None:
            raise RuntimeError("backward before forward")
        batch, _c, length = self._x_shape
        l_out = grad.shape[2]
        w = self.weight.value
        dx_pad = np.zeros_like(self._x_pad)
        for k in range(self.kernel):
            self.weight.grad[:, :, k] += np.tensordot(
                grad, self._tap_view(self._x_pad, k, l_out), axes=([0, 2], [0, 2])
            )
            # Overlapping taps (stride < kernel) accumulate correctly
            # because each tap's += runs on its own strided view in turn.
            dx_pad[:, :, k : k + self.stride * l_out : self.stride] += np.matmul(
                w[:, :, k].T, grad
            )
        self.bias.grad += grad.sum(axis=(0, 2))
        if self.padding:
            return dx_pad[:, :, self.padding : self.padding + length]
        return dx_pad


class MaxPool1d(Module):
    """Max pooling over the last axis."""

    def __init__(self, kernel: int, stride: int | None = None) -> None:
        if kernel < 1:
            raise ValueError("kernel must be >= 1")
        self.kernel = kernel
        self.stride = stride or kernel
        self._x_shape: tuple[int, ...] | None = None
        self._argmax: np.ndarray | None = None
        self._gather: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        if x.ndim != 3:
            raise ValueError(f"expected (B, C, L), got {x.shape}")
        batch, channels, length = x.shape
        l_out = _out_length(length, self.kernel, self.stride, 0)
        gather = (
            np.arange(l_out)[:, None] * self.stride + np.arange(self.kernel)[None, :]
        )
        windows = x[:, :, gather]  # (B, C, L_out, K)
        self._argmax = windows.argmax(axis=3)
        self._x_shape = x.shape
        self._gather = gather
        return windows.max(axis=3)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._x_shape is None or self._argmax is None or self._gather is None:
            raise RuntimeError("backward before forward")
        batch, channels, length = self._x_shape
        dx = np.zeros(self._x_shape)
        l_out = grad.shape[2]
        b_idx, c_idx, o_idx = np.indices((batch, channels, l_out))
        src = self._gather[o_idx, self._argmax]
        np.add.at(dx, (b_idx, c_idx, src), grad)
        return dx


class GlobalAveragePool1d(Module):
    """Mean over the last axis: ``(B, C, L) -> (B, C)``."""

    def __init__(self) -> None:
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        self._x_shape = x.shape
        return x.mean(axis=2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._x_shape is None:
            raise RuntimeError("backward before forward")
        batch, channels, length = self._x_shape
        return np.broadcast_to(grad[:, :, None] / length, self._x_shape).copy()
