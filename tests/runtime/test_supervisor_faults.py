"""Fault injectors composed with the supervisor: nothing ever escapes.

Every injector from :mod:`repro.faults`, at moderate and brutal
severity, is replayed through a :class:`PipelineSupervisor` over the
real DSP featurisation path.  The contract under test is the
supervisor's headline guarantee: one decision per surviving window and
no uncaught exception, no matter what the corrupted log looks like.
"""

from __future__ import annotations

import pytest

from repro.core.streaming import ABSTAIN, WindowDecision
from repro.faults import FAULT_KINDS, FaultSpec, apply_faults
from repro.runtime import PipelineSupervisor

from .conftest import make_log


@pytest.mark.parametrize("kind", FAULT_KINDS)
@pytest.mark.parametrize("severity", [0.6, 0.9])
def test_supervisor_survives_every_injector(identifier, kind, severity):
    log = apply_faults(
        make_log(), [FaultSpec(kind=kind, severity=severity)], seed=3
    )
    supervisor = PipelineSupervisor(identifier)
    decisions = supervisor.process(log)  # must not raise
    for d in decisions:
        assert isinstance(d, WindowDecision)
        if d.abstained:
            assert d.label == ABSTAIN
            assert d.reason is not None
        else:
            assert d.label in identifier.pipeline.classes
            assert 0.0 <= d.confidence <= 1.0
    report = supervisor.health()
    assert report.windows_total == len(decisions)
    assert report.state in ("healthy", "degraded", "failed")


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_zero_severity_is_equivalent_to_clean(identifier, kind):
    log = make_log()
    clean = PipelineSupervisor(identifier).process(log)
    faulted = PipelineSupervisor(identifier).process(
        apply_faults(log, [FaultSpec(kind=kind, severity=0.0)], seed=3)
    )
    assert [d.label for d in faulted] == [d.label for d in clean]


def test_stacked_faults_at_high_severity(identifier):
    # The whole catalogue at once — worst-case soak for the guard path.
    specs = [FaultSpec(kind=kind, severity=0.9) for kind in FAULT_KINDS]
    log = apply_faults(make_log(), specs, seed=5)
    supervisor = PipelineSupervisor(identifier)
    decisions = supervisor.process(log)
    assert all(isinstance(d, WindowDecision) for d in decisions)
    report = supervisor.health()
    assert report.windows_total == len(decisions)
    assert report.windows_failed >= report.dead_letter_count
