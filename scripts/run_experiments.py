"""Run paper experiments and regenerate EXPERIMENTS.md.

Usage::

    python scripts/run_experiments.py [--full] [--only fig09,fig10]
                                      [--seed 0] [--workers 4] [--force]

Thin CLI over :mod:`repro.experiments`: each requested cell is an
``ExperimentSpec`` keyed by (experiment, mode, seed), executed through
``run_batch`` (optionally across parallel worker processes) and
published atomically to the durable results store
(``.repro_cache/experiments/``, one JSON record per cell).  Reruns
skip cells the store already holds — a ``--full`` or different
``--seed`` rerun is a *different* cell and executes — and ``--force``
re-runs cells on purpose.  EXPERIMENTS.md is rewritten (atomically)
from the store after every completed cell, so a partial run still
leaves a usable, correctly-labeled record.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments import (
    ExperimentBatchError,
    ResultsStore,
    default_registry,
    make_spec,
    run_batch,
    write_experiments_md,
)

REPO = Path(__file__).resolve().parents[1]


def parse_args(
    argv: list[str] | None = None, registry: dict | None = None
) -> argparse.Namespace:
    """Parse the CLI, validating ``--only`` ids upfront.

    An unknown id exits with the list of valid ids instead of dying in
    a mid-run ``KeyError`` after hours of completed experiments.
    """
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale datasets")
    parser.add_argument("--only", type=str, default="", help="comma-separated ids")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel worker processes (1 = inline)")
    parser.add_argument("--force", action="store_true",
                        help="re-run cells already in the results store")
    parser.add_argument("--out", type=str, default=str(REPO / "EXPERIMENTS.md"))
    parser.add_argument("--store", type=str,
                        default=str(REPO / ".repro_cache" / "experiments"),
                        help="durable results store directory")
    args = parser.parse_args(argv)

    if registry is None:
        registry = default_registry()
    wanted = [x for x in args.only.split(",") if x] or list(registry)
    unknown = [exp_id for exp_id in wanted if exp_id not in registry]
    if unknown:
        parser.error(
            f"unknown experiment id(s): {', '.join(unknown)}\n"
            f"valid ids: {', '.join(sorted(registry))}"
        )
    args.wanted = wanted
    return args


def main(argv: list[str] | None = None) -> int:
    """Run the requested cells and regenerate EXPERIMENTS.md."""
    registry = default_registry()
    args = parse_args(argv, registry)
    mode = "full" if args.full else "quick"
    store = ResultsStore(args.store)
    specs = [make_spec(exp_id, mode, args.seed) for exp_id in args.wanted]
    out = Path(args.out)

    def on_event(kind, spec, detail):
        tag = {"skip": "skip", "start": "run ", "done": "done", "failed": "FAIL"}
        note = f" ({detail})" if detail else ""
        print(f"[{tag[kind]}] {spec.exp_id} [{spec.mode}, seed {spec.seed}]{note}",
              flush=True)
        if kind == "done":
            # Incremental rewrite: a partial run leaves a usable record.
            write_experiments_md(out, store)

    try:
        run_batch(
            specs,
            store,
            workers=args.workers,
            force=args.force,
            registry=registry,
            on_event=on_event,
        )
    except ExperimentBatchError as exc:
        write_experiments_md(out, store)
        print(f"FAILED: {exc}")
        return 1
    write_experiments_md(out, store)
    print("done.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
