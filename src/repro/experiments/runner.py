"""Run experiment specs: one cell (`run_one`) or a parallel sweep (`run_batch`).

``run_batch`` fans specs across **supervised worker processes** rather
than a bare ``multiprocessing.Pool`` (lint rule RPR011): each spec gets
its own spawned process whose lifecycle the batch loop owns explicitly
— liveness is observed through ``Process.exitcode``, a crash is
attributed to the exact spec that died (instead of hanging a ``map``),
and every completed cell is already durable in the
:class:`~repro.experiments.store.ResultsStore` the moment its worker
exits, because the *worker* publishes the record atomically before
reporting success.  Kill the sweep at any point and a rerun executes
only the missing cells.

Determinism: workers are spawned (fresh interpreter, no inherited
memo caches) and every driver is seeded from its spec alone, so the
same specs produce byte-identical record content regardless of
``workers`` — the determinism tests compare
:meth:`ResultRecord.content_digest` across worker counts.
"""

from __future__ import annotations

import importlib
import inspect
import multiprocessing
import sys
import time
import traceback
from typing import Callable

from repro.experiments.spec import ExperimentSpec, ResultRecord
from repro.experiments.store import ResultsStore

__all__ = [
    "DEFAULT_REGISTRY_FACTORY",
    "ExperimentBatchError",
    "UnknownExperimentError",
    "default_registry",
    "register_runner",
    "resolve_registry_factory",
    "run_batch",
    "run_one",
    "validate_ids",
]

DEFAULT_REGISTRY_FACTORY = "repro.experiments.runner:default_registry"
"""Dotted ``module:callable`` workers resolve their registry from."""

_EXTRA_RUNNERS: dict[str, Callable] = {}

_POLL_S = 0.05


class UnknownExperimentError(ValueError):
    """An experiment id is not in the registry (lists the valid ids)."""

    def __init__(self, unknown: list[str], valid: "list[str] | tuple"):
        self.unknown = list(unknown)
        self.valid = sorted(valid)
        super().__init__(
            f"unknown experiment id(s) {', '.join(self.unknown)}; "
            f"valid ids: {', '.join(self.valid)}"
        )


class ExperimentBatchError(RuntimeError):
    """One or more sweep cells failed (completed cells stay durable).

    Attributes:
        failures: ``{spec key: reason}`` for every failed cell.
        completed: records that did finish (already in the store).
    """

    def __init__(self, failures: dict[str, str], completed: list[ResultRecord]):
        self.failures = dict(failures)
        self.completed = list(completed)
        detail = "; ".join(f"{key}: {why}" for key, why in failures.items())
        super().__init__(
            f"{len(failures)} experiment cell(s) failed "
            f"({len(completed)} completed and durable): {detail}"
        )


def register_runner(exp_id: str, runner: Callable) -> Callable:
    """Register an extra driver under ``exp_id`` (returns ``runner``).

    Drivers take ``(quick: bool, seed: int, **overrides)`` and return
    an :class:`~repro.eval.reporting.ExperimentResult`.  The paper and
    extension drivers come from :data:`repro.eval.ALL_EXPERIMENTS`;
    this hook is for new workloads (e.g. the domain-shift eval).
    """
    _EXTRA_RUNNERS[exp_id] = runner
    return runner


def default_registry() -> dict[str, Callable]:
    """Every known experiment driver, keyed by id."""
    from repro.eval import ALL_EXPERIMENTS

    # Imported for its register_runner side effect: the domain-shift
    # driver lives outside repro.eval to keep the dependency one-way.
    import repro.experiments.domain_shift  # noqa: F401

    registry = dict(ALL_EXPERIMENTS)
    registry.update(_EXTRA_RUNNERS)
    return registry


def resolve_registry_factory(factory: str) -> dict[str, Callable]:
    """Resolve a ``module:callable`` path into a registry dict."""
    module_name, _, attr = factory.partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"registry factory must look like 'pkg.mod:callable', got {factory!r}"
        )
    module = importlib.import_module(module_name)
    registry = getattr(module, attr)()
    if not isinstance(registry, dict):
        raise TypeError(f"registry factory {factory!r} did not return a dict")
    return registry


def validate_ids(
    exp_ids: "list[str] | tuple", registry: dict[str, Callable]
) -> None:
    """Raise :class:`UnknownExperimentError` on any id not registered.

    This runs *before* any cell executes, replacing the old script's
    mid-run bare ``KeyError`` on a typo'd ``--only`` id.
    """
    unknown = [exp_id for exp_id in exp_ids if exp_id not in registry]
    if unknown:
        raise UnknownExperimentError(unknown, list(registry))


def _call_runner(runner: Callable, spec: ExperimentSpec):
    """Invoke a driver with the spec's seed/mode and any overrides."""
    kwargs: dict[str, object] = {
        "quick": spec.mode == "quick",
        "seed": spec.seed,
    }
    overrides = spec.overrides_dict()
    if overrides:
        signature = inspect.signature(runner)
        has_var_kw = any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in signature.parameters.values()
        )
        unknown = [
            name
            for name in overrides
            if not has_var_kw and name not in signature.parameters
        ]
        if unknown:
            raise TypeError(
                f"driver for {spec.exp_id!r} does not accept override(s) "
                f"{', '.join(sorted(unknown))}"
            )
        kwargs.update(overrides)
    return runner(**kwargs)


def run_one(
    spec: ExperimentSpec, registry: "dict[str, Callable] | None" = None
) -> ResultRecord:
    """Execute one spec and return its :class:`ResultRecord`.

    Raises:
        UnknownExperimentError: the spec's id is not registered.
        TypeError: the driver does not accept the spec's overrides.
    """
    registry = registry if registry is not None else default_registry()
    validate_ids([spec.exp_id], registry)
    t0 = time.monotonic()
    result = _call_runner(registry[spec.exp_id], spec)
    elapsed = time.monotonic() - t0
    return ResultRecord.from_result(spec, result, elapsed_s=elapsed)


def _worker_entry(
    spec_payload: dict, store_root: str, registry_factory: str
) -> None:
    """Worker-process body: run one spec and publish its record.

    The record hits the store (atomically) *before* the process exits
    zero, so the parent can treat a clean exit as "record durable" and
    a non-zero exit / missing record as an attributable crash.
    """
    try:
        spec = ExperimentSpec.from_payload(spec_payload)
        registry = resolve_registry_factory(registry_factory)
        record = run_one(spec, registry)
        ResultsStore(store_root).put(record)
    except BaseException:
        traceback.print_exc(file=sys.stderr)
        raise SystemExit(1) from None
    raise SystemExit(0)


def run_batch(
    specs: "list[ExperimentSpec]",
    store: "ResultsStore | None" = None,
    workers: int = 1,
    force: bool = False,
    registry: "dict[str, Callable] | None" = None,
    registry_factory: str = DEFAULT_REGISTRY_FACTORY,
    on_event: "Callable[[str, ExperimentSpec, str], None] | None" = None,
) -> list[ResultRecord]:
    """Run a sweep, skipping cells the store already holds.

    Args:
        specs: cells to run (duplicates collapse to one execution).
        store: durable results store (default:
            :func:`~repro.experiments.store.default_store_root`).
        workers: max concurrent worker processes; ``<= 1`` runs inline
            in this process (no spawning).
        force: rerun and overwrite cells already in the store.
        registry: driver registry for the **inline** path; parallel
            workers resolve ``registry_factory`` themselves (a spawned
            process cannot be handed arbitrary callables).
        registry_factory: dotted ``module:callable`` the workers (and
            upfront validation) use to build their registry.
        on_event: optional progress callback ``(kind, spec, detail)``
            with kind in ``{"skip", "start", "done", "failed"}`` —
            library code stays silent; CLIs pass a printer.

    Returns:
        One record per unique spec, in first-occurrence order.

    Raises:
        UnknownExperimentError: any spec id is unknown (checked before
            anything runs).
        ExperimentBatchError: one or more cells failed; completed
            records are durable in the store and listed on the error.
    """
    store = store if store is not None else ResultsStore()
    if registry is None:
        registry = resolve_registry_factory(registry_factory)
    notify = on_event if on_event is not None else (lambda kind, spec, detail: None)

    unique: dict[str, ExperimentSpec] = {}
    for spec in specs:
        unique.setdefault(spec.key, spec)
    validate_ids(sorted({s.exp_id for s in unique.values()}), registry)

    done: dict[str, ResultRecord] = {}
    todo: list[ExperimentSpec] = []
    for key, spec in unique.items():
        record = None if force else store.get(key)
        if record is not None:
            done[key] = record
            notify("skip", spec, "already recorded")
        else:
            todo.append(spec)

    failures: dict[str, str] = {}
    if workers <= 1:
        for spec in todo:
            notify("start", spec, "")
            try:
                record = run_one(spec, registry)
            except Exception as exc:  # noqa: BLE001 - attributed and re-raised
                failures[spec.key] = f"{type(exc).__name__}: {exc}"
                notify("failed", spec, failures[spec.key])
                continue
            store.put(record)
            done[spec.key] = record
            notify("done", spec, f"{record.elapsed_s:.0f} s")
    elif todo:
        _run_parallel(
            todo, store, workers, registry_factory, done, failures, notify
        )

    ordered = [done[key] for key in unique if key in done]
    if failures:
        raise ExperimentBatchError(failures, ordered)
    return ordered


def _run_parallel(
    todo: list[ExperimentSpec],
    store: ResultsStore,
    workers: int,
    registry_factory: str,
    done: dict[str, ResultRecord],
    failures: dict[str, str],
    notify: Callable,
) -> None:
    """Drive the spawned workers; fills ``done``/``failures`` in place."""
    ctx = multiprocessing.get_context("spawn")
    pending = list(todo)
    active: dict[str, tuple] = {}
    while pending or active:
        while pending and len(active) < max(workers, 1):
            spec = pending.pop(0)
            process = ctx.Process(
                target=_worker_entry,
                args=(spec.payload(), str(store.root), registry_factory),
                daemon=False,
            )
            process.start()
            active[spec.key] = (spec, process)
            notify("start", spec, f"pid {process.pid}")
        for key in list(active):
            spec, process = active[key]
            process.join(_POLL_S)
            if process.is_alive():
                continue
            del active[key]
            record = store.get(key) if process.exitcode == 0 else None
            if process.exitcode == 0 and record is not None:
                done[key] = record
                notify("done", spec, f"{record.elapsed_s:.0f} s")
            else:
                reason = (
                    f"worker exited {process.exitcode}"
                    if process.exitcode != 0
                    else "worker exited 0 but published no record"
                )
                failures[key] = reason
                notify("failed", spec, reason)
