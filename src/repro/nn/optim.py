"""Optimisers and gradient clipping.

The paper trains with stochastic gradient descent and "scales the norm
of the gradient" against exploding LSTM gradients (Section VI-A); both
are provided, plus Adam as a faster-converging alternative for the
compact simulated datasets.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.obs.metrics import counter
from repro.obs.tracing import span


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns:
        The pre-clipping norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = float(np.sqrt(sum(float(np.sum(p.grad**2)) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class SGD:
    """SGD with optional momentum and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in params]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        with span("nn.optimizer.step", kind="sgd", params=len(self.params)):
            for p, v in zip(self.params, self._velocity):
                g = p.grad
                if self.weight_decay:
                    g = g + self.weight_decay * p.value
                if self.momentum:
                    v *= self.momentum
                    v += g
                    g = v
                p.value -= self.lr * g
        counter("nn.optimizer_steps_total", kind="sgd").inc()

    def get_state(self) -> dict:
        """Slot state for checkpointing (velocity buffers)."""
        return {
            "kind": "sgd",
            "velocity": [v.copy() for v in self._velocity],
        }

    def set_state(self, state: dict) -> None:
        """Restore slot state saved by :meth:`get_state`.

        Raises:
            ValueError: on an optimizer-kind or slot-shape mismatch.
        """
        if state.get("kind") != "sgd":
            raise ValueError(f"expected sgd state, got {state.get('kind')!r}")
        velocity = state["velocity"]
        if len(velocity) != len(self._velocity):
            raise ValueError(
                f"velocity count mismatch: checkpoint has {len(velocity)}, "
                f"optimizer tracks {len(self._velocity)}"
            )
        for i, (current, saved) in enumerate(zip(self._velocity, velocity)):
            if current.shape != np.shape(saved):
                raise ValueError(f"velocity slot {i} shape mismatch")
            self._velocity[i] = np.array(saved, dtype=np.float64)


class Adam:
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in params]
        self._v = [np.zeros_like(p.value) for p in params]
        self._t = 0

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        with span("nn.optimizer.step", kind="adam", params=len(self.params)):
            self._t += 1
            bc1 = 1.0 - self.beta1**self._t
            bc2 = 1.0 - self.beta2**self._t
            for p, m, v in zip(self.params, self._m, self._v):
                g = p.grad
                if self.weight_decay:
                    g = g + self.weight_decay * p.value
                m *= self.beta1
                m += (1.0 - self.beta1) * g
                v *= self.beta2
                v += (1.0 - self.beta2) * g * g
                p.value -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
        counter("nn.optimizer_steps_total", kind="adam").inc()

    def get_state(self) -> dict:
        """Slot state for checkpointing (moments and step count)."""
        return {
            "kind": "adam",
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def set_state(self, state: dict) -> None:
        """Restore slot state saved by :meth:`get_state`.

        Raises:
            ValueError: on an optimizer-kind or slot-shape mismatch.
        """
        if state.get("kind") != "adam":
            raise ValueError(f"expected adam state, got {state.get('kind')!r}")
        for name, current_slots in (("m", self._m), ("v", self._v)):
            saved = state[name]
            if len(saved) != len(current_slots):
                raise ValueError(
                    f"{name} count mismatch: checkpoint has {len(saved)}, "
                    f"optimizer tracks {len(current_slots)}"
                )
            for i, (current, value) in enumerate(zip(current_slots, saved)):
                if current.shape != np.shape(value):
                    raise ValueError(f"{name} slot {i} shape mismatch")
                current_slots[i] = np.array(value, dtype=np.float64)
        self._t = int(state["t"])
