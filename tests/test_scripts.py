"""The experiments runner script's plumbing (no heavy experiments)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def load_runner():
    spec = importlib.util.spec_from_file_location(
        "run_experiments", REPO / "scripts" / "run_experiments.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules["run_experiments"] = module
    spec.loader.exec_module(module)
    return module


class TestRunnerScript:
    def test_write_orders_by_registry(self, tmp_path):
        runner = load_runner()
        out = tmp_path / "EXPERIMENTS.md"
        runner._write(
            out,
            {
                "fig09": "== fig09 block ==\n",
                "fig02": "== fig02 block ==\n",
            },
        )
        text = out.read_text()
        assert text.index("fig02 block") < text.index("fig09 block")
        assert "paper vs measured" in text

    def test_write_skips_missing(self, tmp_path):
        runner = load_runner()
        out = tmp_path / "EXPERIMENTS.md"
        runner._write(out, {"fig03": "== fig03 block ==\n"})
        text = out.read_text()
        assert "fig03 block" in text
        assert "fig09" not in text.replace("fig09/", "")

    def test_header_mentions_regeneration(self, tmp_path):
        runner = load_runner()
        out = tmp_path / "EXPERIMENTS.md"
        runner._write(out, {})
        assert "run_experiments.py" in out.read_text()
