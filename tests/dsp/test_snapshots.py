"""Snapshot assembly from read logs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp import build_snapshots, uncalibrated


class TestBuildSnapshots:
    def test_shapes(self, small_log):
        psi = uncalibrated(small_log)
        snaps = build_snapshots(small_log, psi, 0)
        frames, rounds, n_ant = snaps.z.shape
        assert n_ant == 4
        assert rounds == 4  # 400 ms dwell / (4 x 25 ms) rounds
        assert frames == snaps.n_frames
        assert snaps.wavelength_m.shape == (frames,)

    def test_most_entries_observed(self, small_log):
        psi = uncalibrated(small_log)
        snaps = build_snapshots(small_log, psi, 0)
        assert snaps.valid.mean() > 0.8  # a few misses are expected

    def test_amplitude_and_phase_consistent(self, small_log):
        psi = uncalibrated(small_log)
        snaps = build_snapshots(small_log, psi, 1)
        observed = snaps.z[snaps.valid]
        assert (np.abs(observed) > 0).all()

    def test_forced_frame_count(self, small_log):
        psi = uncalibrated(small_log)
        snaps = build_snapshots(small_log, psi, 0, n_frames=5)
        assert snaps.n_frames == 5

    def test_wavelengths_in_uhf_band(self, small_log):
        psi = uncalibrated(small_log)
        snaps = build_snapshots(small_log, psi, 0)
        assert (snaps.wavelength_m > 0.31).all()
        assert (snaps.wavelength_m < 0.34).all()

    def test_frame_valid_requires_two_antennas(self, small_log):
        psi = uncalibrated(small_log)
        snaps = build_snapshots(small_log, psi, 0)
        for f in range(snaps.n_frames):
            expected = int(snaps.valid[f].any(axis=0).sum()) >= 2
            assert snaps.frame_valid(f) == expected

    def test_misaligned_psi_rejected(self, small_log):
        with pytest.raises(ValueError):
            build_snapshots(small_log, np.zeros(3), 0)

    def test_single_channel_per_frame(self, small_log):
        """Frames are dwell-aligned, so every read in a frame shares
        one carrier — the property that makes MUSIC steering exact."""
        meta = small_log.meta
        # Snap to the dwell grid the same way build_snapshots does.
        t0 = np.floor(small_log.timestamp_s.min() / meta.dwell_s) * meta.dwell_s
        for tag in range(small_log.n_tags):
            sub = small_log.for_tag(tag)
            dwell = np.floor((sub.timestamp_s - t0) / meta.dwell_s).astype(int)
            for d in np.unique(dwell):
                channels = np.unique(sub.channel[dwell == d])
                assert len(channels) == 1

    def test_duplicate_bin_keeps_last_read(self, small_log):
        """Two reads landing in the same (dwell, round, antenna) bin
        must resolve to the *last* read in log order — the semantics the
        original per-read Python loop had and the vectorised assignment
        must preserve."""
        from repro.channel.link import rssi_dbm_to_amplitude
        from repro.channel.params import ChannelParams
        from repro.hardware import ReadLog

        meta = small_log.meta
        # Same tag, same bin (t=0.01 -> dwell 0, round 0, antenna 2).
        log = ReadLog(
            epcs=("T",),
            tag_index=np.zeros(3, dtype=int),
            antenna=np.array([2, 2, 2]),
            channel=np.zeros(3, dtype=int),
            frequency_hz=np.full(3, meta.frequencies_hz[0]),
            timestamp_s=np.array([0.010, 0.012, 0.014]),
            phase_rad=np.zeros(3),
            rssi_dbm=np.array([-60.0, -55.0, -50.0]),
            meta=meta,
        )
        psi = np.array([0.3, 1.1, 2.2])
        snaps = build_snapshots(log, psi, 0, n_frames=1)
        amp = rssi_dbm_to_amplitude(np.array([-50.0]), ChannelParams())[0]
        assert snaps.valid[0, 0, 2]
        assert snaps.z[0, 0, 2] == pytest.approx(amp * np.exp(2.2j))
        assert snaps.valid.sum() == 1

    def test_frame_wavelength_is_last_read_in_frame(self, small_log):
        """Per-frame wavelength follows the frame's last read."""
        from repro.channel.params import SPEED_OF_LIGHT
        from repro.hardware import ReadLog

        meta = small_log.meta
        f0, f1 = meta.frequencies_hz[0], meta.frequencies_hz[9]
        log = ReadLog(
            epcs=("T",),
            tag_index=np.zeros(2, dtype=int),
            antenna=np.array([0, 1]),
            channel=np.array([0, 9]),
            frequency_hz=np.array([f0, f1]),
            timestamp_s=np.array([0.01, 0.30]),
            phase_rad=np.zeros(2),
            rssi_dbm=np.full(2, -60.0),
            meta=meta,
        )
        psi = np.zeros(2)
        snaps = build_snapshots(log, psi, 0, n_frames=1)
        assert snaps.wavelength_m[0] == pytest.approx(SPEED_OF_LIGHT / f1)
