"""Streaming activity identification over a continuous read log.

A deployment does not see neatly cut samples: the reader emits one
endless LLRP stream while residents switch activities.  The streaming
identifier slides a fixed observation window over that stream,
featurises each window exactly like training samples, and emits a
labelled, confidence-scored decision per window — the paper's
"examines both spatial and temporal information in realtime".

No window is ever silently dropped: a window the identifier cannot (or
should not) classify yields an explicit *abstain* decision carrying a
machine-readable reason, so a supervisor process can distinguish "the
room is quiet" from "the reader is failing".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import ActivityDataset
from repro.core.pipeline import M2AIPipeline
from repro.dsp.calibration import PhaseCalibrator, uncalibrated
from repro.dsp.features import M2AIFeaturizer
from repro.hardware.llrp import ReadLog
from repro.obs.metrics import counter
from repro.obs.tracing import span

ABSTAIN = "abstain"
"""Label carried by abstain decisions."""

REASON_TOO_FEW_READS = "too_few_reads"
"""Abstain reason: the window held fewer than ``min_reads`` reads."""

REASON_DEAD_PORTS = "dead_ports"
"""Abstain reason: fewer than ``min_live_ports`` ports reported reads."""

REASON_LOW_CONFIDENCE = "low_confidence"
"""Abstain reason: top softmax probability below ``min_confidence``."""


@dataclass(frozen=True)
class WindowDecision:
    """One emitted decision.

    Attributes:
        t_start_s: window start time in stream time.
        t_end_s: window end time.
        label: predicted activity class, or :data:`ABSTAIN`.
        confidence: softmax probability of the predicted class (0 for
            an abstain).
        n_reads: reads that fell inside the window.
        abstained: True when the identifier declined to classify.
        reason: machine-readable abstain reason (one of
            :data:`REASON_TOO_FEW_READS`, :data:`REASON_DEAD_PORTS`,
            :data:`REASON_LOW_CONFIDENCE`), None for a labelled
            decision.
    """

    t_start_s: float
    t_end_s: float
    label: str
    confidence: float
    n_reads: int
    abstained: bool = False
    reason: str | None = None


@dataclass
class StreamingIdentifier:
    """Sliding-window classifier over a continuous log.

    Args:
        pipeline: a fitted :class:`M2AIPipeline`.
        calibrator: the session's phase calibrator (None = raw doubled
            phases, only sensible in tests).
        window_s: observation window length — must match the frame
            count the pipeline was trained with.
        hop_s: stride between consecutive windows (defaults to the
            window length: back-to-back, non-overlapping decisions).
        featurizer: preprocessing used during training.
        min_reads: windows with fewer reads abstain (tag outage).
        min_live_ports: windows observing fewer antenna ports abstain
            (the spatial features need at least a 2-element aperture).
        min_confidence: classifications below this top-class
            probability become abstains; 0 (the default) disables the
            check, preserving the always-classify behaviour.
    """

    pipeline: M2AIPipeline
    calibrator: PhaseCalibrator | None = None
    window_s: float = 6.0
    hop_s: float | None = None
    featurizer: object = field(default_factory=M2AIFeaturizer)
    min_reads: int = 32
    min_live_ports: int = 2
    min_confidence: float = 0.0

    def identify(self, log: ReadLog) -> list[WindowDecision]:
        """Classify every complete window of ``log``.

        Every window position yields exactly one decision — labelled
        when the window is classifiable, abstaining with a reason
        otherwise.  Only a log too short to contain a single complete
        window produces an empty list.

        The log is sorted by timestamp once and every window becomes a
        ``searchsorted`` slice of that order (instead of one boolean
        scan of all reads per window); all classifiable windows are
        featurised and scored through a *single* batched
        ``predict_proba`` call.

        Returns:
            Decisions in time order (possibly empty for a short log).

        Raises:
            RuntimeError: when the pipeline is not fitted.
            ValueError: on a non-positive ``window_s`` or ``hop_s``
                (a zero or negative hop would never advance the
                window).
        """
        if self.pipeline.model is None:
            raise RuntimeError("pipeline not fitted")
        if self.window_s is None or self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.hop_s is not None and self.hop_s <= 0:
            raise ValueError("hop_s must be positive")
        hop = self.window_s if self.hop_s is None else self.hop_s
        if log.n_reads == 0:
            return []
        dwell = log.meta.dwell_s
        n_frames = max(1, int(round(self.window_s / dwell)))

        with span("streaming.identify", reads=log.n_reads) as identify_span:
            psi_full = (
                self.calibrator.calibrate(log)
                if self.calibrator is not None
                else uncalibrated(log)
            )
            if np.all(log.timestamp_s[1:] >= log.timestamp_s[:-1]):
                sorted_log, psi_sorted = log, psi_full
            else:
                order = np.argsort(log.timestamp_s, kind="stable")
                sorted_log = log.take(order)
                psi_sorted = psi_full[order]
            ts = sorted_log.timestamp_s
            t0 = np.floor(float(ts[0]) / dwell) * dwell
            # A window is complete once its final dwell has started.
            t_end = float(ts[-1]) + dwell
            starts: list[float] = []
            start = t0
            while start + self.window_s <= t_end + 1e-9:
                starts.append(float(start))
                start += hop
            if not starts:
                identify_span.set(windows=0)
                return []
            starts_arr = np.asarray(starts, dtype=np.float64)
            lo = np.searchsorted(ts, starts_arr, side="left")
            hi = np.searchsorted(ts, starts_arr + self.window_s, side="left")

            decisions: list[WindowDecision | None] = [None] * len(starts)
            pending: list[tuple[int, float, int]] = []
            samples = []
            for i, (w_start, w_lo, w_hi) in enumerate(zip(starts, lo, hi)):
                n_reads = int(w_hi - w_lo)
                with span("streaming.window", t_start_s=w_start):
                    if n_reads < self.min_reads:
                        decisions[i] = self._abstain(
                            w_start, w_start + self.window_s, n_reads,
                            REASON_TOO_FEW_READS,
                        )
                    else:
                        window_log = sorted_log.take(slice(int(w_lo), int(w_hi)))
                        live_ports = int(window_log.antenna_liveness().sum())
                        if live_ports < self.min_live_ports:
                            decisions[i] = self._abstain(
                                w_start, w_start + self.window_s, n_reads,
                                REASON_DEAD_PORTS,
                            )
                        else:
                            samples.append(
                                self.featurizer.transform(
                                    window_log,
                                    psi_sorted[w_lo:w_hi],
                                    n_frames=n_frames,
                                )
                            )
                            pending.append((i, w_start, n_reads))
                counter("streaming.windows_total").inc()

            if pending:
                dataset = ActivityDataset(
                    samples=samples, labels=["?"] * len(samples)
                )
                with span("streaming.predict", windows=len(pending)):
                    probas = self.pipeline.predict_proba(dataset)
                for (i, w_start, n_reads), proba in zip(pending, probas):
                    decisions[i] = self._score(
                        w_start, n_reads, np.asarray(proba)
                    )
            identify_span.set(windows=len(decisions))
        return [d for d in decisions if d is not None]

    def _score(
        self, start: float, n_reads: int, proba: np.ndarray
    ) -> WindowDecision:
        """Turn one window's class probabilities into a decision."""
        end = start + self.window_s
        best = int(proba.argmax())
        confidence = float(proba[best])
        if confidence < self.min_confidence:
            return self._abstain(start, end, n_reads, REASON_LOW_CONFIDENCE)
        counter("streaming.decisions_total").inc()
        return WindowDecision(
            t_start_s=start,
            t_end_s=end,
            label=str(self.pipeline.classes[best]),
            confidence=confidence,
            n_reads=n_reads,
        )

    def _abstain(
        self, start: float, end: float, n_reads: int, reason: str
    ) -> WindowDecision:
        counter("streaming.abstain_total", reason=reason).inc()
        return WindowDecision(
            t_start_s=start,
            t_end_s=end,
            label=ABSTAIN,
            confidence=0.0,
            n_reads=n_reads,
            abstained=True,
            reason=reason,
        )
