"""Synthetic dataset generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import GenerationConfig, SyntheticDatasetGenerator, tiny_generation, vary
from repro.dsp.features import RssiFeaturizer


class TestGenerationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GenerationConfig(environment="spaceship")
        with pytest.raises(ValueError):
            GenerationConfig(scenario_labels=("A99",))
        with pytest.raises(ValueError):
            GenerationConfig(samples_per_class=0)
        with pytest.raises(ValueError):
            GenerationConfig(n_antennas=1)

    def test_vary(self):
        base = tiny_generation()
        changed = vary(base, n_antennas=3)
        assert changed.n_antennas == 3
        assert changed.scenario_labels == base.scenario_labels


class TestGenerateRaw:
    @pytest.fixture(scope="class")
    def raw(self):
        config = GenerationConfig(
            scenario_labels=("A01", "A03"),
            samples_per_class=2,
            duration_s=4.0,
            seed=5,
        )
        return config, SyntheticDatasetGenerator(config).generate_raw()

    def test_sample_count_and_labels(self, raw):
        config, samples = raw
        assert len(samples) == 4
        assert sorted({s.label for s in samples}) == ["A01", "A03"]

    def test_logs_nonempty(self, raw):
        _config, samples = raw
        for s in samples:
            assert s.log.n_reads > 100
            assert s.calibration_log.n_reads > s.log.n_reads  # 20 s vs 4 s

    def test_six_tags_per_sample(self, raw):
        _config, samples = raw
        for s in samples:
            assert s.log.n_tags == 6  # 2 people x 3 tags

    def test_frame_count_matches_duration(self, raw):
        config, samples = raw
        assert samples[0].n_frames == int(round(config.duration_s / 0.4))

    def test_psi_toggle(self, raw):
        _config, samples = raw
        sample = samples[0]
        calibrated = sample.psi(use_calibration=True)
        uncal = sample.psi(use_calibration=False)
        assert calibrated.shape == uncal.shape
        assert not np.allclose(calibrated, uncal)

    def test_deterministic_in_seed(self):
        config = GenerationConfig(
            scenario_labels=("A01",), samples_per_class=1, duration_s=2.0, seed=9
        )
        a = SyntheticDatasetGenerator(config).generate_raw()[0]
        b = SyntheticDatasetGenerator(config).generate_raw()[0]
        np.testing.assert_allclose(a.log.phase_rad, b.log.phase_rad)

    def test_different_seeds_differ(self):
        base = GenerationConfig(
            scenario_labels=("A01",), samples_per_class=1, duration_s=2.0, seed=9
        )
        a = SyntheticDatasetGenerator(base).generate_raw()[0]
        c = SyntheticDatasetGenerator(vary(base, seed=10)).generate_raw()[0]
        assert a.log.n_reads != c.log.n_reads or not np.allclose(
            a.log.phase_rad[: min(100, c.log.n_reads)],
            c.log.phase_rad[: min(100, c.log.n_reads)],
        )


class TestFeaturize:
    def test_dataset_shapes(self, tiny_dataset):
        assert len(tiny_dataset) == 12  # 3 classes x 4
        shapes = tiny_dataset.channel_shapes
        assert shapes["pseudo"] == (6, 180)
        assert shapes["period"] == (6, 4)
        assert sorted(tiny_dataset.classes) == ["A01", "A03", "A05"]

    def test_alternate_featurizer(self):
        config = GenerationConfig(
            scenario_labels=("A01",), samples_per_class=1, duration_s=2.0, seed=3
        )
        generator = SyntheticDatasetGenerator(config)
        raw = generator.generate_raw()
        ds = generator.featurize(raw, featurizer=RssiFeaturizer())
        assert set(ds.channel_shapes) == {"rssi"}

    def test_calibration_toggle_changes_features(self):
        config = GenerationConfig(
            scenario_labels=("A01",), samples_per_class=1, duration_s=2.0, seed=3
        )
        generator = SyntheticDatasetGenerator(config)
        raw = generator.generate_raw()
        with_cal = generator.featurize(raw, use_calibration=True)
        without = generator.featurize(raw, use_calibration=False)
        assert not np.allclose(
            with_cal.samples[0].channels["pseudo"],
            without.samples[0].channels["pseudo"],
        )

    def test_environment_presets(self):
        for env in ("laboratory", "hall"):
            config = GenerationConfig(
                environment=env,
                scenario_labels=("A01",),
                samples_per_class=1,
                duration_s=2.0,
                seed=1,
            )
            generator = SyntheticDatasetGenerator(config)
            room = generator.make_room()
            assert room.name == env
            array = generator.make_array(room)
            assert room.contains(array.center)
