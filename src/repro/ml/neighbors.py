"""k-nearest-neighbours classifier (Fig. 9 baseline)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, validate_xy


class KNeighborsClassifier(Classifier):
    """Majority vote over the k nearest training points.

    Args:
        n_neighbors: vote size.
        weights: ``"uniform"`` or ``"distance"`` (inverse-distance
            weighted votes).
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        """Fit the classifier; returns ``self``."""
        x, y = validate_xy(x, y)
        self._x = x
        self._y = y
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class ids for ``x``, shape ``(B,)``."""
        if self._x is None or self._y is None:
            raise RuntimeError("classifier not fitted")
        x = np.asarray(x, dtype=np.float64)
        k = min(self.n_neighbors, len(self._x))
        # Squared distances via the expansion ||a-b||^2 = ||a||^2 - 2ab + ||b||^2.
        d2 = (
            np.sum(x**2, axis=1)[:, None]
            - 2.0 * x @ self._x.T
            + np.sum(self._x**2, axis=1)[None, :]
        )
        nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
        out = []
        for row, idx in enumerate(nearest):
            votes: dict = {}
            for j in idx:
                if self.weights == "distance":
                    w = 1.0 / (np.sqrt(max(d2[row, j], 0.0)) + 1e-9)
                else:
                    w = 1.0
                label = self._y[j]
                votes[label] = votes.get(label, 0.0) + w
            out.append(max(sorted(votes), key=lambda label: votes[label]))
        return np.asarray(out)
