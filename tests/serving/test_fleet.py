"""FleetServer: admission, shedding, crash recovery, health roll-up."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.streaming import REASON_ADMISSION
from repro.runtime.supervisor import HEALTH_FAILED, HEALTH_HEALTHY
from repro.serving import REASON_CAPACITY, FleetServer

from .conftest import make_factory, make_identifier, make_log


def _fleet(**kwargs) -> FleetServer:
    kwargs.setdefault("capacity", 8)
    kwargs.setdefault("n_shards", 2)
    return FleetServer(make_factory(), **kwargs)


class TestAdmission:
    def test_admits_up_to_capacity_then_rejects_explicitly(self):
        fleet = _fleet(capacity=3)
        for i in range(3):
            result = fleet.admit(f"s{i}")
            assert result.admitted
            assert result.shard is not None
        rejected = fleet.admit("s3")
        assert not rejected.admitted
        assert rejected.reason == REASON_CAPACITY
        assert rejected.shard is None
        health = fleet.health()
        assert health.admitted_total == 3
        assert health.rejected_total == 1

    def test_rejected_stream_submissions_get_admission_abstains(self):
        fleet = _fleet(capacity=1)
        fleet.admit("in")
        fleet.admit("out")
        receipt = fleet.submit("out", make_log(n=1500, seed=0, duration_s=10.0))
        assert receipt.enqueued == 0
        assert len(receipt.decisions) == 4  # one per complete window
        assert all(d.abstained for d in receipt.decisions)
        assert all(d.reason == REASON_ADMISSION for d in receipt.decisions)

    def test_unknown_stream_submission_raises(self):
        fleet = _fleet()
        with pytest.raises(KeyError):
            fleet.submit("ghost", make_log(n=100))

    def test_duplicate_admission_raises(self):
        fleet = _fleet()
        fleet.admit("s0")
        with pytest.raises(ValueError):
            fleet.admit("s0")

    def test_eviction_frees_a_capacity_slot(self):
        fleet = _fleet(capacity=1)
        fleet.admit("a")
        assert not fleet.admit("b").admitted
        fleet.evict("a")
        assert fleet.admit("b").admitted

    def test_streams_spread_across_shards(self):
        fleet = _fleet(capacity=8, n_shards=2)
        shards = [fleet.admit(f"s{i}").shard for i in range(8)]
        assert shards.count(0) == 4
        assert shards.count(1) == 4

    def test_admission_counters_observable(self):
        obs.enable()
        fleet = _fleet(capacity=1)
        fleet.admit("a")
        fleet.admit("b")
        values = {m.name: m.value for m in obs.get_registry().collect()
                  if m.name.startswith("serving.admission")}
        assert values["serving.admission.admitted_total"] == 1.0
        assert values["serving.admission.rejected_total"] == 1.0


class TestServing:
    def test_drain_serves_every_stream(self):
        fleet = _fleet(capacity=4, n_shards=2)
        for i in range(4):
            fleet.admit(f"s{i}")
            fleet.submit(f"s{i}", make_log(n=1500, seed=i, duration_s=10.0))
        decisions = fleet.drain()
        assert set(decisions) == {f"s{i}" for i in range(4)}
        assert all(len(ds) == 4 for ds in decisions.values())
        assert fleet.total_queued() == 0

    def test_fleet_matches_single_supervisor_decisions(self):
        from repro.runtime import PipelineSupervisor

        log = make_log(n=1500, seed=7, duration_s=10.0)
        solo = PipelineSupervisor(make_identifier())
        solo.submit_stream(log)
        expected = [
            (round(d.t_start_s, 6), d.label, d.abstained) for d in solo.drain()
        ]

        fleet = _fleet(capacity=1, n_shards=1)
        fleet.admit("only")
        fleet.submit("only", log)
        got = [
            (round(d.t_start_s, 6), d.label, d.abstained)
            for d in fleet.drain()["only"]
        ]
        assert got == expected


class TestLoadShedding:
    def test_sustained_overload_sheds_lowest_priority_first(self):
        fleet = _fleet(
            capacity=4,
            n_shards=1,
            max_queued_windows=6,
            overload_grace_ticks=2,
            windows_per_stream_per_tick=1,
            supervisor_kwargs={"max_queue": 64},
        )
        fleet.admit("vip", priority=10)
        fleet.admit("std", priority=0)
        log = make_log(n=1500, seed=0, duration_s=10.0)
        for _ in range(2):
            fleet.submit("vip", log)
            fleet.submit("std", log)
        assert fleet.total_queued() == 16

        fleet.tick()  # tick 1: over watermark, within grace -> no shed yet
        health = fleet.health()
        assert health.shed_windows_total == 0

        fleet.tick()  # tick 2: sustained -> shed down to the watermark
        health = fleet.health()
        assert health.shed_windows_total > 0
        depths = fleet.workers[0].queue_depths()
        # The VIP stream must keep its windows; "std" pays the shed.
        assert depths["vip"] >= depths["std"]

    def test_transient_spike_not_shed(self):
        fleet = _fleet(
            capacity=2,
            n_shards=1,
            max_queued_windows=2,
            overload_grace_ticks=3,
            windows_per_stream_per_tick=8,
            supervisor_kwargs={"max_queue": 64},
        )
        fleet.admit("s0")
        fleet.submit("s0", make_log(n=1500, seed=0, duration_s=10.0))
        fleet.tick()  # backlog clears within one tick: grace never expires
        assert fleet.health().shed_windows_total == 0


class TestHealth:
    def test_healthy_fleet_reports_healthy(self):
        fleet = _fleet(capacity=2, n_shards=2)
        fleet.admit("a")
        fleet.admit("b")
        health = fleet.health()
        assert health.state == HEALTH_HEALTHY
        assert len(health.shards) == 2
        assert health.stream_states() == {"a": HEALTH_HEALTHY, "b": HEALTH_HEALTHY}

    def test_health_gauges_exported_on_tick(self):
        obs.enable()
        fleet = _fleet(capacity=2, n_shards=2)
        fleet.admit("a")
        fleet.tick()
        gauges = {
            (m.name, dict(m.labels).get("shard")): m.value
            for m in obs.get_registry().collect()
            if m.name == "serving.shard.health"
        }
        assert gauges[("serving.shard.health", "0")] == 0.0
        assert gauges[("serving.shard.health", "1")] == 0.0

    def test_dead_inline_worker_reports_failed_shard(self):
        fleet = _fleet(capacity=2, n_shards=2)
        fleet.admit("a")
        fleet.workers[0].stop()
        health = fleet.health()
        assert health.state == HEALTH_FAILED
        assert health.shards[0].state == HEALTH_FAILED
        assert health.shards[1].state == HEALTH_HEALTHY
