"""Profiling harness: per-stage latency percentiles for the M²AI path.

Run as a module::

    PYTHONPATH=src python -m repro.obs.profile --quick

The harness builds a small but complete workload — simulated reader
inventory, phase calibration, a trained 2-class pipeline, a continuous
wave-then-walk stream — enables the observability layer, exercises the
instrumented ingest→DSP→inference path, and writes
``BENCH_obs_realtime.json``: p50/p95/p99 wall-clock latency for every
instrumented stage plus a real-time margin for the end-to-end window.

The required stage set (hub merge, calibration, MUSIC, periodogram,
network forward, fused LSTM, end-to-end window, supervised runtime
window) is asserted before the artifact is written, so a refactor that
silently drops an instrumentation point fails the benchmark job
instead of producing a hollow artifact.

Two parity gates run inside the measured block: the batched DSP
entry points against their scalar loops (``rtol=1e-12``) and the fused
LSTM against its per-timestep scalar reference (``rtol=1e-9``), plus
the float32 serve pack's accuracy-parity gate — decisions on the eval
set must match float64 exactly before the streaming stages are
measured through it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REQUIRED_STAGES = (
    "hub.merge",
    "dsp.calibration.fit",
    "dsp.music",
    "dsp.music.batch",
    "dsp.periodogram",
    "dsp.periodogram.batch",
    "nn.forward",
    "nn.fused",
    "streaming.window",
    "runtime.window",
)
"""Stages the artifact must cover for the benchmark to count.

The scalar ``dsp.music`` / ``dsp.periodogram`` spans come from the
batch stage's scalar reference loop (the featurisation hot path itself
now runs the ``*.batch`` entry points), so a refactor that silently
drops either side of the scalar-vs-batched comparison still fails the
benchmark job.  ``nn.fused`` is the fused-GEMM LSTM inner stage — its
presence proves the recurrent fast path (not a fallback) served the
measured windows.
"""

_WINDOW_S = 4.0
_SLOT_S = 0.025


def build_workload(quick: bool, seed: int):
    """Train a small 2-class pipeline and build a continuous stream.

    Mirrors the tier-1 streaming test setup (laboratory room, 3 tags on
    hand/arm/shoulder, wave vs. walk) so the profiled path is exactly
    the one the tests pin down.

    Returns:
        ``(pipeline, calibrator, stream, calibration_log, window_logs)``
        where ``window_logs`` are single-window logs used to exercise
        the featurise + hub-merge stages directly.
    """
    from repro.core import ActivityDataset, M2AIConfig, M2AIPipeline
    from repro.dsp.calibration import PhaseCalibrator
    from repro.dsp.features import M2AIFeaturizer
    from repro.geometry import Vec2, make_laboratory
    from repro.hardware import (
        Reader,
        ReaderConfig,
        Scene,
        TagTrack,
        UniformLinearArray,
        concatenate_logs,
        make_tag,
    )
    from repro.motion import get_primitive, perform

    room = make_laboratory()
    array = UniformLinearArray(center=Vec2(room.bounds.width / 2.0, 0.3))
    reader = Reader(ReaderConfig(array=array), room, seed=seed)
    rng = np.random.default_rng(seed + 1)
    anchor = Vec2(room.bounds.width / 2.0 + 0.8, 4.0)
    tags = [make_tag(f"P{i}", rng) for i in range(3)]

    def scene_for(primitive_name: str, t_offset: float, duration: float) -> Scene:
        n_slots = int(round(duration / _SLOT_S))
        t = t_offset + (np.arange(n_slots) + 0.5) * _SLOT_S
        motion = perform(get_primitive(primitive_name), anchor, t, rng, facing=np.pi / 2)
        tracks = tuple(
            TagTrack(tag=tags[i], positions=motion.tag_position(site), carrier=0)
            for i, site in enumerate(("hand", "arm", "shoulder"))
        )
        return Scene(tag_tracks=tracks, bodies=(motion.body_track(),))

    calibration_s = 10.0 if quick else 20.0
    calibration_log = reader.inventory(
        scene_for("stand_still", 0.0, calibration_s), calibration_s
    )
    calibrator = PhaseCalibrator.fit(calibration_log)

    featurizer = M2AIFeaturizer()
    n_frames = int(round(_WINDOW_S / reader.hopper.dwell_s))
    reps = 3 if quick else 6
    samples, labels, window_logs = [], [], []
    for label, primitive in (("wave", "wave_hand"), ("walk", "walk_line")):
        for _rep in range(reps):
            log = reader.inventory(scene_for(primitive, 0.0, _WINDOW_S), _WINDOW_S)
            psi = calibrator.calibrate(log)
            samples.append(featurizer.transform(log, psi, n_frames=n_frames, label=label))
            labels.append(label)
            if len(window_logs) < 2:
                window_logs.append(log)
    dataset = ActivityDataset(samples=samples, labels=labels)
    epochs = 8 if quick else 15
    pipeline = M2AIPipeline(
        M2AIConfig(epochs=epochs, batch_size=6, warmup_frames=2, seed=seed)
    ).fit(dataset)

    n_windows = 2 if quick else 4
    parts = []
    for w in range(n_windows):
        primitive = "wave_hand" if w % 2 == 0 else "walk_line"
        parts.append(
            reader.inventory(
                scene_for(primitive, w * _WINDOW_S, _WINDOW_S),
                _WINDOW_S,
                t0=w * _WINDOW_S,
            )
        )
    stream = concatenate_logs(parts)
    return pipeline, calibrator, stream, calibration_log, window_logs, dataset


def run_batch_stage(window_logs: list, calibrator, repeat: int) -> dict:
    """The ``batch`` stage: scalar-vs-batched DSP on identical inputs.

    Builds one stack of real dwell snapshots/covariances from a window
    log, runs the per-frame scalar MUSIC/periodogram loop and the
    batched entry points on it, verifies the spectra agree to
    ``rtol=1e-12`` (the batching contract), and reports the measured
    speedup.  Runs inside the instrumented block, so it is also what
    produces the scalar ``dsp.music`` / ``dsp.periodogram`` spans in
    the artifact.

    Returns:
        The ``"batch"`` section of the benchmark document.

    Raises:
        AssertionError: when a batched spectrum deviates from its
            scalar reference beyond ``rtol=1e-12``.
    """
    from repro.dsp.correlation import spatial_covariance_stack
    from repro.dsp.frames import tag_snapshot_set
    from repro.dsp.music import (
        clear_steering_cache,
        music_pseudospectrum,
        music_pseudospectrum_batch,
        steering_cache_info,
    )
    from repro.dsp.periodogram import (
        spatial_periodogram,
        spatial_periodogram_batch,
    )

    log = window_logs[0]
    psi = calibrator.calibrate(log)
    z_rows, valid_rows, wavelengths = [], [], []
    for snaps in tag_snapshot_set(log, psi):
        for f in range(snaps.n_frames):
            if snaps.frame_valid(f):
                z_rows.append(snaps.z[f])
                valid_rows.append(snaps.valid[f])
                wavelengths.append(float(snaps.wavelength_m[f]))
    z = np.stack(z_rows)
    valid = np.stack(valid_rows)
    wl = np.asarray(wavelengths)
    spacing = log.meta.spacing_m
    n_dwells = z.shape[0]
    covariances = spatial_covariance_stack(z, valid)

    clear_steering_cache()
    t0 = time.perf_counter()
    for _ in range(repeat):
        scalar_music = [
            music_pseudospectrum(covariances[w], spacing, wl[w])
            for w in range(n_dwells)
        ]
    music_scalar_ms = (time.perf_counter() - t0) * 1000.0 / repeat

    clear_steering_cache()
    t0 = time.perf_counter()
    for _ in range(repeat):
        batch_music = music_pseudospectrum_batch(covariances, spacing, wl)
    music_batch_ms = (time.perf_counter() - t0) * 1000.0 / repeat

    for scalar, batched in zip(scalar_music, batch_music):
        np.testing.assert_allclose(
            batched.spectrum, scalar.spectrum, rtol=1e-12,
            err_msg="batched MUSIC deviates from the scalar path",
        )

    t0 = time.perf_counter()
    for _ in range(repeat):
        scalar_period = np.stack(
            [spatial_periodogram(z[w], valid[w]) for w in range(n_dwells)]
        )
    period_scalar_ms = (time.perf_counter() - t0) * 1000.0 / repeat

    t0 = time.perf_counter()
    for _ in range(repeat):
        batch_period = spatial_periodogram_batch(z, valid)
    period_batch_ms = (time.perf_counter() - t0) * 1000.0 / repeat

    np.testing.assert_allclose(
        batch_period, scalar_period, rtol=1e-12,
        err_msg="batched periodogram deviates from the scalar path",
    )

    return {
        "dwells": int(n_dwells),
        "repeat": int(repeat),
        "music": {
            "scalar_ms": music_scalar_ms,
            "batch_ms": music_batch_ms,
            "speedup_x": music_scalar_ms / max(music_batch_ms, 1e-9),
        },
        "periodogram": {
            "scalar_ms": period_scalar_ms,
            "batch_ms": period_batch_ms,
            "speedup_x": period_scalar_ms / max(period_batch_ms, 1e-9),
        },
        "spectra_rtol": 1e-12,
        "steering_cache": steering_cache_info(),
    }


def run_nn_stage(pipeline, dataset, repeat: int) -> dict:
    """The ``nn`` stage: scalar-vs-fused LSTM parity and serve-dtype timing.

    Two comparisons, both on the trained model itself:

    1. **Scalar vs fused.** Every LSTM layer's fused forward
       (one ``X @ W_ih`` GEMM for all timesteps) is checked against its
       per-timestep scalar reference (``forward_reference``) under an
       ``rtol=1e-9`` assert — the recurrent twin of the 1e-12 DSP
       batching gate (looser because the fused path sums gates in a
       different order) — and both are timed.
    2. **float64 vs float32.** The full-model ``predict_proba`` is
       timed at training precision and through the cast-once float32
       serve pack (installed via the accuracy-parity gate, which must
       accept).  The pack is left installed, so stages profiled after
       this one serve float32.

    Returns:
        The ``"nn"`` section of the benchmark document.

    Raises:
        AssertionError: when a fused forward deviates from its scalar
            reference beyond ``rtol=1e-9``.
        repro.core.pipeline.ServeParityError: when the float32 pack
            changes any decision on the eval set.
    """
    from repro.nn.recurrent import LSTM

    lstms = [m for m in pipeline.model.modules() if isinstance(m, LSTM)]
    rng = np.random.default_rng(2024)
    layers = []
    for idx, lstm in enumerate(lstms):
        x = rng.standard_normal((4, 24, lstm.in_dim))
        reference = lstm.forward_reference(x)
        fused = lstm.forward(x)
        np.testing.assert_allclose(
            fused, reference, rtol=1e-9, atol=1e-12,
            err_msg="fused LSTM deviates from the scalar reference",
        )
        loops = max(repeat * 3, 5)
        t0 = time.perf_counter()
        for _ in range(loops):
            lstm.forward_reference(x)
        scalar_ms = (time.perf_counter() - t0) * 1000.0 / loops
        t0 = time.perf_counter()
        for _ in range(loops):
            lstm.forward(x)
        fused_ms = (time.perf_counter() - t0) * 1000.0 / loops
        layers.append(
            {
                "layer": idx,
                "in_dim": int(lstm.in_dim),
                "hidden": int(lstm.hidden),
                "scalar_ms": scalar_ms,
                "fused_ms": fused_ms,
                "speedup_x": scalar_ms / max(fused_ms, 1e-9),
                "max_abs_delta": float(np.abs(fused - reference).max()),
            }
        )

    n_windows = len(dataset.labels)
    loops = max(repeat, 2)
    pipeline.set_serve_dtype("float64")
    pipeline.predict_proba(dataset)  # warm
    t0 = time.perf_counter()
    for _ in range(loops):
        pipeline.predict_proba(dataset)
    float64_ms = (time.perf_counter() - t0) * 1000.0 / loops
    parity_report = pipeline.set_serve_dtype("float32", parity=dataset)
    pipeline.predict_proba(dataset)  # warm
    t0 = time.perf_counter()
    for _ in range(loops):
        pipeline.predict_proba(dataset)
    float32_ms = (time.perf_counter() - t0) * 1000.0 / loops

    return {
        "parity_rtol": 1e-9,
        "lstm": layers,
        "serve": {
            "windows": int(n_windows),
            "float64_ms": float64_ms,
            "float32_ms": float32_ms,
            "speedup_x": float64_ms / max(float32_ms, 1e-9),
            "float64_per_window_ms": float64_ms / max(n_windows, 1),
            "float32_per_window_ms": float32_ms / max(n_windows, 1),
            "parity_gate": parity_report,
        },
    }


def run_profile(quick: bool = True, seed: int = 0, repeat: int | None = None) -> dict:
    """Execute the instrumented workload and aggregate stage latencies.

    Args:
        quick: smaller workload (CI-sized; a couple of minutes on CPU).
        seed: workload seed.
        repeat: measured iterations per stage driver (defaults to 2
            quick / 5 full).

    Returns:
        The benchmark document (also the JSON artifact's content).

    Raises:
        RuntimeError: when a required stage produced no spans — i.e.
            an instrumentation point was lost.
    """
    from repro import obs
    from repro.dsp.calibration import PhaseCalibrator
    from repro.dsp.features import M2AIFeaturizer
    from repro.hardware.hub import merge_hub_features

    if repeat is None:
        repeat = 2 if quick else 5

    t_setup = time.perf_counter()
    pipeline, calibrator, stream, calibration_log, window_logs, dataset = (
        build_workload(quick, seed)
    )
    setup_s = time.perf_counter() - t_setup

    from repro.core.streaming import StreamingIdentifier

    identifier = StreamingIdentifier(pipeline, calibrator=calibrator, window_s=_WINDOW_S)

    featurizer = M2AIFeaturizer()
    per_view = []
    for log in window_logs:
        psi = calibrator.calibrate(log)
        per_view.append(featurizer.transform(log, psi))

    obs.enable()
    obs.reset()
    t_measure = time.perf_counter()
    try:
        for _ in range(repeat):
            PhaseCalibrator.fit(calibration_log)
        # The nn stage runs first: it installs the float32 serve pack
        # (parity-gated), so the streaming/runtime stages below measure
        # the production serve path, not the training-precision one.
        nn_doc = run_nn_stage(pipeline, dataset, repeat=max(repeat, 2))
        identifier.serve_dtype = "float32"
        for _ in range(repeat):
            identifier.identify(stream)
        from repro.runtime import PipelineSupervisor

        supervisor = PipelineSupervisor(identifier)
        for _ in range(repeat):
            supervisor.process(stream)
        supervisor_health = supervisor.health().as_dict()
        for _ in range(max(repeat * 10, 20)):
            merge_hub_features(list(per_view))
        batch_doc = run_batch_stage(window_logs, calibrator, repeat=max(repeat, 2))
        measure_s = time.perf_counter() - t_measure
        durations = obs.get_collector().durations_by_name()
        metrics_doc = json.loads(obs.get_registry().to_json())
    finally:
        obs.disable()

    missing = [name for name in REQUIRED_STAGES if not durations.get(name)]
    if missing:
        raise RuntimeError(f"required stages produced no spans: {missing}")

    stages = {}
    for name, values in sorted(durations.items()):
        arr = np.asarray(values, dtype=np.float64)
        stages[name] = {
            "count": int(arr.size),
            "p50_ms": float(np.percentile(arr, 50)),
            "p95_ms": float(np.percentile(arr, 95)),
            "p99_ms": float(np.percentile(arr, 99)),
            "mean_ms": float(arr.mean()),
            "total_ms": float(arr.sum()),
        }

    window_p95_ms = stages["streaming.window"]["p95_ms"]
    # Inference is batched across windows now, so the honest per-window
    # cost is the whole identify pass amortised over its windows.
    identify_per_window_ms = stages["streaming.identify"]["total_ms"] / max(
        stages["streaming.window"]["count"], 1
    )
    # streaming.predict spans cover only batched inference calls; their
    # window counts live in the serve section of the nn stage, so the
    # per-window predict cost amortises the span total over the same
    # denominator as identify.
    predict_per_window_ms = stages.get("streaming.predict", {}).get(
        "total_ms", 0.0
    ) / max(stages["streaming.window"]["count"], 1)
    doc = {
        "schema": "repro.obs.bench.v1",
        "quick": bool(quick),
        "seed": int(seed),
        "repeat": int(repeat),
        "setup_s": round(setup_s, 3),
        "measure_s": round(measure_s, 3),
        "required_stages": list(REQUIRED_STAGES),
        "stages": stages,
        "realtime": {
            "window_s": _WINDOW_S,
            "window_p95_ms": window_p95_ms,
            "margin_x": float(_WINDOW_S * 1000.0 / max(window_p95_ms, 1e-9)),
            "identify_per_window_ms": identify_per_window_ms,
            "identify_margin_x": float(
                _WINDOW_S * 1000.0 / max(identify_per_window_ms, 1e-9)
            ),
            "predict_per_window_ms": predict_per_window_ms,
            "serve_dtype": pipeline.serve_dtype,
        },
        "batch": batch_doc,
        "nn": nn_doc,
        "runtime": {
            "supervised_window_p95_ms": stages["runtime.window"]["p95_ms"],
            "health": supervisor_health,
        },
        "metrics": metrics_doc,
    }
    return doc


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the profile and write the JSON artifact."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile",
        description="Profile the instrumented ingest→DSP→inference path.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workload (smaller, faster)"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--repeat", type=int, default=None, help="measured iterations per driver"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_obs_realtime.json"),
        help="artifact path (default: BENCH_obs_realtime.json)",
    )
    args = parser.parse_args(argv)

    doc = run_profile(quick=args.quick, seed=args.seed, repeat=args.repeat)
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")

    out = sys.stdout.write
    out(f"wrote {args.out}\n")
    out(f"{'stage':<28}{'count':>7}{'p50 ms':>10}{'p95 ms':>10}{'p99 ms':>10}\n")
    for name, st in doc["stages"].items():
        out(
            f"{name:<28}{st['count']:>7}{st['p50_ms']:>10.3f}"
            f"{st['p95_ms']:>10.3f}{st['p99_ms']:>10.3f}\n"
        )
    rt = doc["realtime"]
    out(
        f"real-time margin: {rt['margin_x']:.1f}x "
        f"(p95 window {rt['window_p95_ms']:.0f} ms vs {rt['window_s']:.0f} s budget)\n"
    )
    out(
        f"identify per window: {rt['identify_per_window_ms']:.2f} ms "
        f"({rt['identify_margin_x']:.1f}x real time, inference batched)\n"
    )
    out(
        f"predict per window: {rt['predict_per_window_ms']:.3f} ms "
        f"(serve_dtype={rt['serve_dtype']})\n"
    )
    nn = doc["nn"]
    for layer in nn["lstm"]:
        out(
            f"nn lstm[{layer['layer']}]: {layer['scalar_ms']:.3f} ms scalar vs "
            f"{layer['fused_ms']:.3f} ms fused ({layer['speedup_x']:.1f}x, "
            f"parity rtol {nn['parity_rtol']:g})\n"
        )
    serve = nn["serve"]
    out(
        f"nn serve: {serve['float64_ms']:.2f} ms float64 vs "
        f"{serve['float32_ms']:.2f} ms float32 over {serve['windows']} windows "
        f"({serve['speedup_x']:.1f}x, parity gate "
        f"{'accepted' if serve['parity_gate']['accepted'] else 'REJECTED'})\n"
    )
    runtime = doc["runtime"]
    out(
        f"supervised window p95: {runtime['supervised_window_p95_ms']:.2f} ms, "
        f"health={runtime['health']['state']}\n"
    )
    batch = doc["batch"]
    for kind in ("music", "periodogram"):
        st = batch[kind]
        out(
            f"batch {kind}: {st['scalar_ms']:.3f} ms scalar vs "
            f"{st['batch_ms']:.3f} ms batched over {batch['dwells']} dwells "
            f"({st['speedup_x']:.1f}x)\n"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
