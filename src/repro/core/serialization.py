"""Pipeline persistence: save a trained M2AI classifier, load it back.

A deployment trains once and serves for weeks; the trained pipeline
(network weights, feature scalers, label vocabulary, configuration)
round-trips through a single ``.npz`` file with a JSON manifest — no
pickle, so checkpoints are portable and inspectable.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import M2AIConfig
from repro.core.dataset import ChannelScaler
from repro.core.model import M2AINet
from repro.core.pipeline import M2AIPipeline
from repro.ml.base import LabelEncoder
from repro.ml.preprocessing import StandardScaler

_FORMAT_VERSION = 1


def save_pipeline(pipeline: M2AIPipeline, path: str | Path) -> None:
    """Write a fitted pipeline to ``path`` (.npz).

    Raises:
        RuntimeError: when the pipeline has not been fitted.
    """
    if pipeline.model is None:
        raise RuntimeError("cannot save an unfitted pipeline")
    path = Path(path)
    model = pipeline.model
    encoder = pipeline._encoder
    assert encoder.classes_ is not None

    manifest = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(pipeline.config),
        "mode": pipeline.mode,
        "classes": encoder.classes_.tolist(),
        "channel_shapes": {
            name: list(shape) for name, shape in model.channel_shapes.items()
        },
        "n_classes": model.n_classes,
        "scaler_channels": sorted(pipeline._scaler._scalers),
    }
    arrays: dict[str, np.ndarray] = {}
    for i, value in enumerate(model.get_state()):
        arrays[f"param_{i:04d}"] = value
    for name, scaler in pipeline._scaler._scalers.items():
        assert scaler.mean_ is not None and scaler.scale_ is not None
        arrays[f"scaler_mean__{name}"] = scaler.mean_
        arrays[f"scaler_scale__{name}"] = scaler.scale_
    np.savez_compressed(path, manifest=json.dumps(manifest), **arrays)


def load_pipeline(path: str | Path) -> M2AIPipeline:
    """Load a pipeline saved by :func:`save_pipeline`.

    Raises:
        ValueError: for an unknown format version.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        manifest = json.loads(str(data["manifest"]))
        if manifest["format_version"] != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {manifest['format_version']}"
            )
        config_fields = dict(manifest["config"])
        # JSON stores tuples as lists; restore tuple-typed fields.
        for key, value in config_fields.items():
            if isinstance(value, list):
                config_fields[key] = tuple(value)
        config = M2AIConfig(**config_fields)
        pipeline = M2AIPipeline(config, mode=manifest["mode"])

        encoder = LabelEncoder()
        encoder.classes_ = np.array(manifest["classes"])
        pipeline._encoder = encoder

        scaler = ChannelScaler()
        for name in manifest["scaler_channels"]:
            inner = StandardScaler()
            inner.mean_ = data[f"scaler_mean__{name}"]
            inner.scale_ = data[f"scaler_scale__{name}"]
            scaler._scalers[name] = inner
        pipeline._scaler = scaler

        channel_shapes = {
            name: tuple(shape)
            for name, shape in manifest["channel_shapes"].items()
        }
        model = M2AINet(
            channel_shapes=channel_shapes,
            n_classes=manifest["n_classes"],
            cfg=config,
            mode=manifest["mode"],
            rng=np.random.default_rng(config.seed),
        )
        param_keys = sorted(k for k in data.files if k.startswith("param_"))
        model.set_state([data[k] for k in param_keys])
        pipeline.model = model
    return pipeline
