"""Robustness evaluation: accuracy under injected deployment faults.

The paper's accuracy numbers are measured on clean captures; a
deployment sees collisions, blockage, dead ports and calibration gaps.
This driver sweeps fault severity x fault kind (via
:mod:`repro.faults`) against one fitted pipeline and reports the
degradation curve — accuracy over decided windows plus the abstain
rate — giving the repo a quantified robustness baseline.

Decisions go through :class:`~repro.core.streaming.StreamingIdentifier`
so the numbers reflect the *serving* path, including its graceful
abstentions, not just batch featurisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.streaming import StreamingIdentifier
from repro.data.generator import RawSample
from repro.dsp.calibration import PhaseCalibrator
from repro.eval.reporting import ExperimentResult, ExperimentRow
from repro.faults import FaultSpec, apply_faults

DEFAULT_FAULT_KINDS = (
    "dropout",
    "dead_port",
    "phase_noise",
    "ghost_reads",
    "calibration_gap",
)
"""Fault kinds the standard sweep covers."""

DEFAULT_SEVERITIES = (0.0, 0.3, 0.6, 0.9)
"""Severity grid of the standard sweep."""


@dataclass(frozen=True)
class RobustnessCell:
    """One (fault kind, severity) measurement.

    Attributes:
        kind: fault kind swept.
        severity: fault severity in ``[0, 1]``.
        accuracy: accuracy over the *decided* (non-abstained) windows;
            NaN when every window abstained.
        abstain_rate: abstained windows / total windows.
        n_windows: decisions the cell is measured over.
    """

    kind: str
    severity: float
    accuracy: float
    abstain_rate: float
    n_windows: int


@dataclass
class RobustnessReport:
    """A full severity x kind sweep against one pipeline."""

    cells: list[RobustnessCell] = field(default_factory=list)

    def cell(self, kind: str, severity: float) -> RobustnessCell:
        """Lookup one measurement.

        Raises:
            KeyError: when the sweep did not cover (kind, severity).
        """
        for c in self.cells:
            if c.kind == kind and c.severity == severity:
                return c
        raise KeyError((kind, severity))

    def render(self) -> str:
        """Severity -> accuracy/abstain-rate table, one row per kind."""
        severities = sorted({c.severity for c in self.cells})
        kinds = list(dict.fromkeys(c.kind for c in self.cells))
        width = max([len(k) for k in kinds] + [10])
        header = f"{'fault':<{width}}  " + "  ".join(
            f"s={s:<4.2f} acc/abst" for s in severities
        )
        lines = [header, "-" * len(header)]
        for kind in kinds:
            parts = []
            for s in severities:
                c = self.cell(kind, s)
                acc = "  -- " if np.isnan(c.accuracy) else f"{c.accuracy:5.2f}"
                parts.append(f"{acc}/{c.abstain_rate:4.2f} ")
            lines.append(f"{kind:<{width}}  " + "  ".join(parts))
        return "\n".join(lines)


def robustness_sweep(
    identifier: StreamingIdentifier,
    raw_samples: list[RawSample],
    kinds: tuple[str, ...] = DEFAULT_FAULT_KINDS,
    severities: tuple[float, ...] = DEFAULT_SEVERITIES,
    seed: int = 0,
) -> RobustnessReport:
    """Sweep fault severity x kind over held-out raw recordings.

    Every recording is corrupted per (kind, severity) with a
    deterministic per-sample seed, then served through ``identifier``;
    a window's decision counts as correct when its label matches the
    recording's class.  ``calibration_gap`` corrupts the *calibration*
    log (refitting the calibrator) while the runtime log stays clean;
    every other kind corrupts the runtime log.  Severity zero reuses
    one shared clean pass — the injectors are exact no-ops there, so
    per-kind clean baselines are identical by construction.

    Args:
        identifier: serving-path identifier wrapping the fitted
            pipeline (its calibrator is replaced per sample).
        raw_samples: held-out recordings with their calibration logs.
        kinds: fault kinds to sweep.
        severities: severity grid (should include 0.0 for a baseline).
        seed: base seed for the fault scenarios.

    Returns:
        The :class:`RobustnessReport`.
    """
    clean: list[RobustnessCell] | None = None
    report = RobustnessReport()
    for kind in kinds:
        for severity in severities:
            if severity == 0.0:
                if clean is None:
                    stats = _serve_all(identifier, raw_samples, kind, 0.0, seed)
                    clean = [stats]
                cell = clean[0]
                report.cells.append(
                    RobustnessCell(
                        kind=kind,
                        severity=0.0,
                        accuracy=cell.accuracy,
                        abstain_rate=cell.abstain_rate,
                        n_windows=cell.n_windows,
                    )
                )
                continue
            report.cells.append(
                _serve_all(identifier, raw_samples, kind, severity, seed)
            )
    return report


def _serve_all(
    identifier: StreamingIdentifier,
    raw_samples: list[RawSample],
    kind: str,
    severity: float,
    seed: int,
) -> RobustnessCell:
    """Serve every recording under one fault setting."""
    correct = decided = abstained = total = 0
    spec = FaultSpec(kind=kind, severity=severity)
    for i, raw in enumerate(raw_samples):
        sample_seed = seed * 100_003 + i
        if kind == "calibration_gap" and severity > 0.0:
            cal_log = apply_faults(raw.calibration_log, [spec], seed=sample_seed)
            log = raw.log
            try:
                calibrator = PhaseCalibrator.fit(cal_log)
            except ValueError:  # bootstrap wiped out entirely
                calibrator = None
        else:
            log = apply_faults(raw.log, [spec], seed=sample_seed)
            calibrator = _clean_calibrator(raw)
        identifier.calibrator = calibrator
        decisions = identifier.identify(log)
        if not decisions:
            # Log too degraded to hold one complete window: count the
            # recording as an abstention, not a silent skip.
            abstained += 1
            total += 1
            continue
        for decision in decisions:
            total += 1
            if decision.abstained:
                abstained += 1
            else:
                decided += 1
                correct += int(decision.label == raw.label)
    accuracy = correct / decided if decided else float("nan")
    return RobustnessCell(
        kind=kind,
        severity=severity,
        accuracy=accuracy,
        abstain_rate=abstained / max(total, 1),
        n_windows=total,
    )


def _clean_calibrator(raw: RawSample) -> PhaseCalibrator:
    """The recording's clean-bootstrap calibrator, fitted once."""
    if raw.calibrator is None:
        raw.calibrator = PhaseCalibrator.fit(raw.calibration_log)
    return raw.calibrator


def run_ext_robustness(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Degradation curves: accuracy/abstain rate vs fault severity.

    Trains a compact pipeline on clean recordings of four activities,
    then sweeps :data:`DEFAULT_FAULT_KINDS` x
    :data:`DEFAULT_SEVERITIES` over the held-out recordings through the
    streaming serving path.
    """
    from repro.core.config import M2AIConfig
    from repro.core.pipeline import M2AIPipeline
    from repro.data.generator import GenerationConfig, SyntheticDatasetGenerator
    from repro.eval.harness import get_raw_samples

    cfg = GenerationConfig(
        scenario_labels=("A01", "A03", "A07", "A11"),
        samples_per_class=6 if quick else 12,
        duration_s=6.0,
        calibration_s=20.0,
        seed=seed,
    )
    raw = get_raw_samples(cfg)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(raw))
    n_test = max(4, int(0.25 * len(raw)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    generator = SyntheticDatasetGenerator(cfg)
    train_ds = generator.featurize([raw[i] for i in train_idx])

    import os

    epochs = 25 if quick else 45
    override = os.environ.get("REPRO_BENCH_EPOCHS")
    if override:
        epochs = min(epochs, int(override))
    pipeline = M2AIPipeline(M2AIConfig(epochs=epochs, batch_size=8, seed=seed))
    pipeline.fit(train_ds)

    dwell = raw[0].log.meta.dwell_s
    identifier = StreamingIdentifier(
        pipeline, window_s=raw[0].n_frames * dwell, min_reads=32
    )
    report = robustness_sweep(
        identifier, [raw[i] for i in test_idx], seed=seed
    )

    rows = []
    for cell in report.cells:
        acc = 0.0 if np.isnan(cell.accuracy) else cell.accuracy
        rows.append(
            ExperimentRow(f"{cell.kind} s={cell.severity:.1f}", None, acc)
        )
        rows.append(
            ExperimentRow(
                f"{cell.kind} s={cell.severity:.1f} abstain",
                None,
                cell.abstain_rate,
                unit="rate",
            )
        )
    return ExperimentResult(
        experiment_id="ext-robustness",
        title="Fault robustness: accuracy/abstain vs severity",
        rows=rows,
        notes=(
            "Accuracy is over decided windows only; the abstain rate is "
            "the fraction of windows the streaming identifier declined "
            "with an explicit reason. Severity 0 is the clean baseline "
            "(injectors are exact no-ops)."
        ),
        extras={"degradation table": report.render()},
    )
