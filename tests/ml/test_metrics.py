"""Accuracy, confusion matrices, P/R/F1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import accuracy, confusion_matrix, precision_recall_f1


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array(["a", "b"]), np.array(["a", "b"])) == 1.0

    def test_half(self):
        assert accuracy(np.array([0, 1, 0, 1]), np.array([0, 1, 1, 0])) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))


class TestConfusionMatrix:
    def test_layout_prediction_rows_actual_columns(self):
        truth = np.array(["a", "a", "b"])
        pred = np.array(["a", "b", "b"])
        cm = confusion_matrix(truth, pred)
        a, b = 0, 1
        assert cm.counts[a, a] == 1  # a predicted as a
        assert cm.counts[b, a] == 1  # a predicted as b
        assert cm.counts[b, b] == 1

    def test_column_normalised_sums_to_one(self):
        truth = np.array(["a"] * 5 + ["b"] * 3)
        pred = np.array(["a", "a", "b", "a", "b", "b", "b", "a"])
        norm = confusion_matrix(truth, pred).column_normalized()
        np.testing.assert_allclose(norm.sum(axis=0), 1.0)

    def test_diagonal_accuracy_is_recall(self):
        truth = np.array(["a", "a", "a", "b"])
        pred = np.array(["a", "a", "b", "b"])
        diag = confusion_matrix(truth, pred).diagonal_accuracy()
        np.testing.assert_allclose(diag, [2 / 3, 1.0])

    def test_render_contains_percentages(self):
        truth = np.array(["a", "b"])
        pred = np.array(["a", "b"])
        text = confusion_matrix(truth, pred).render()
        assert "100%" in text

    def test_explicit_label_order(self):
        truth = np.array(["b", "a"])
        pred = np.array(["b", "a"])
        cm = confusion_matrix(truth, pred, labels=np.array(["b", "a"]))
        assert cm.labels.tolist() == ["b", "a"]

    def test_unseen_predicted_class_included(self):
        truth = np.array(["a", "a"])
        pred = np.array(["a", "c"])
        cm = confusion_matrix(truth, pred)
        assert "c" in cm.labels.tolist()


class TestPrecisionRecallF1:
    def test_perfect_scores(self):
        truth = np.array([0, 1, 2])
        stats = precision_recall_f1(truth, truth)
        np.testing.assert_allclose(stats["precision"], 1.0)
        np.testing.assert_allclose(stats["recall"], 1.0)
        np.testing.assert_allclose(stats["f1"], 1.0)

    def test_known_values(self):
        truth = np.array([1, 1, 1, 0])
        pred = np.array([1, 1, 0, 0])
        stats = precision_recall_f1(truth, pred)
        idx1 = stats["labels"].tolist().index(1)
        assert stats["precision"][idx1] == pytest.approx(1.0)
        assert stats["recall"][idx1] == pytest.approx(2 / 3)

    def test_absent_class_zero_not_nan(self):
        truth = np.array([0, 0])
        pred = np.array([1, 1])
        stats = precision_recall_f1(truth, pred)
        assert np.isfinite(stats["f1"]).all()
