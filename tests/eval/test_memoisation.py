"""Harness memoisation: one corpus, one training, many drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import M2AIConfig
from repro.data import GenerationConfig
from repro.eval import clear_cache, get_dataset, train_eval_m2ai

TINY = GenerationConfig(
    scenario_labels=("A01", "A03"),
    samples_per_class=3,
    duration_s=3.2,
    calibration_s=20.0,
    seed=171,
)
TRAIN = M2AIConfig(
    conv_channels=(3, 4), branch_dim=6, merge_dim=8, lstm_hidden=6,
    lstm_layers=1, epochs=3, batch_size=4, warmup_frames=1,
)


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_cache()
    yield
    clear_cache()


class TestDatasetMemo:
    def test_same_object_returned(self):
        a = get_dataset(TINY)
        b = get_dataset(TINY)
        assert a is b

    def test_featurizer_key_separates(self):
        from repro.dsp.features import RssiFeaturizer

        a = get_dataset(TINY)
        b = get_dataset(TINY, featurizer=RssiFeaturizer())
        assert a is not b
        assert set(b.channel_shapes) == {"rssi"}

    def test_calibration_key_separates(self):
        a = get_dataset(TINY, use_calibration=True)
        b = get_dataset(TINY, use_calibration=False)
        assert a is not b


class TestTrainMemo:
    def test_repeat_call_returns_same_model(self):
        ds = get_dataset(TINY)
        result_a, pipe_a = train_eval_m2ai(ds, TRAIN, split_seed=0, test_fraction=0.34)
        result_b, pipe_b = train_eval_m2ai(ds, TRAIN, split_seed=0, test_fraction=0.34)
        assert pipe_a is pipe_b
        assert result_a.accuracy == result_b.accuracy

    def test_different_mode_not_shared(self):
        ds = get_dataset(TINY)
        _r1, pipe_a = train_eval_m2ai(ds, TRAIN, mode="cnn_lstm", split_seed=0, test_fraction=0.34)
        _r2, pipe_b = train_eval_m2ai(ds, TRAIN, mode="cnn", split_seed=0, test_fraction=0.34)
        assert pipe_a is not pipe_b

    def test_clear_cache_resets(self):
        ds = get_dataset(TINY)
        _r, pipe_a = train_eval_m2ai(ds, TRAIN, split_seed=0, test_fraction=0.34)
        clear_cache()
        ds2 = get_dataset(TINY)
        _r2, pipe_b = train_eval_m2ai(ds2, TRAIN, split_seed=0, test_fraction=0.34)
        assert pipe_a is not pipe_b
