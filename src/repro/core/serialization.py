"""Pipeline persistence: save a trained M2AI classifier, load it back.

A deployment trains once and serves for weeks; the trained pipeline
(network weights, feature scalers, label vocabulary, configuration)
round-trips through a single ``.npz`` file with a JSON manifest — no
pickle, so checkpoints are portable and inspectable.

Crash safety: every write goes through a same-directory temp file and
``os.replace``, so a crash mid-write can never leave a truncated
``.npz`` at the destination path; readers see either the old complete
file or the new complete file.  Every read failure — missing file,
truncated archive, missing key, bad manifest — surfaces as a
:class:`CheckpointError` naming the path and the field that failed,
not a raw ``zipfile``/``KeyError`` internal.

The same machinery persists mid-training state
(:func:`save_training_checkpoint` / :func:`load_training_checkpoint`):
model parameters, optimizer slots, the training RNG state, and the
history, which is what lets ``Trainer.fit(resume_from=...)`` continue
a killed run bit-exact.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
import zlib
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import M2AIConfig
from repro.core.dataset import ChannelScaler
from repro.core.model import M2AINet
from repro.core.pipeline import M2AIPipeline
from repro.ml.base import LabelEncoder
from repro.ml.preprocessing import StandardScaler

__all__ = [
    "CheckpointError",
    "load_pipeline",
    "load_training_checkpoint",
    "save_pipeline",
    "save_training_checkpoint",
]

_FORMAT_VERSION = 1
_TRAIN_FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file is missing, corrupt, or incomplete.

    Subclasses :class:`ValueError` so callers catching the historical
    version-mismatch error keep working.

    Attributes:
        path: the checkpoint file the failure is about.
        field: the manifest field or array key that failed, when the
            failure is attributable to one.
    """

    def __init__(
        self, path: str | Path, detail: str, field: str | None = None
    ) -> None:
        location = f" (field {field!r})" if field is not None else ""
        super().__init__(f"checkpoint {path}{location}: {detail}")
        self.path = str(path)
        self.field = field


def _atomic_savez(path: Path, arrays: dict[str, object]) -> None:
    """Write ``arrays`` to ``path`` via temp file + ``os.replace``."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _open_archive(path: Path):
    """Open an ``.npz`` checkpoint, translating low-level failures."""
    try:
        return np.load(path, allow_pickle=False)
    except FileNotFoundError as exc:
        raise CheckpointError(path, "file does not exist") from exc
    except (zipfile.BadZipFile, ValueError, OSError) as exc:
        raise CheckpointError(
            path, f"not a readable .npz archive: {exc}"
        ) from exc


def _read_array(data, path: Path, key: str) -> np.ndarray:
    """Read one array from an open archive with clear attribution."""
    try:
        return data[key]
    except KeyError as exc:
        raise CheckpointError(path, "required array missing", field=key) from exc
    except (zipfile.BadZipFile, zlib.error, EOFError, OSError, ValueError) as exc:
        raise CheckpointError(
            path, f"truncated or corrupt array: {exc}", field=key
        ) from exc


def _read_manifest(data, path: Path) -> dict:
    raw = _read_array(data, path, "manifest")
    try:
        manifest = json.loads(str(raw))
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            path, f"manifest is not valid JSON: {exc}", field="manifest"
        ) from exc
    if not isinstance(manifest, dict):
        raise CheckpointError(
            path, "manifest is not a JSON object", field="manifest"
        )
    return manifest


def _manifest_field(manifest: dict, path: Path, key: str):
    try:
        return manifest[key]
    except KeyError as exc:
        raise CheckpointError(
            path, "required manifest field missing", field=key
        ) from exc


def save_pipeline(pipeline: M2AIPipeline, path: str | Path) -> None:
    """Write a fitted pipeline to ``path`` (.npz), atomically.

    The archive is assembled in a same-directory temp file and moved
    into place with ``os.replace``, so a crash mid-write never leaves
    a corrupt checkpoint at ``path``.

    Raises:
        RuntimeError: when the pipeline has not been fitted.
    """
    if pipeline.model is None:
        raise RuntimeError("cannot save an unfitted pipeline")
    path = Path(path)
    model = pipeline.model
    encoder = pipeline._encoder
    assert encoder.classes_ is not None

    manifest = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(pipeline.config),
        "mode": pipeline.mode,
        "classes": encoder.classes_.tolist(),
        "channel_shapes": {
            name: list(shape) for name, shape in model.channel_shapes.items()
        },
        "n_classes": model.n_classes,
        "scaler_channels": sorted(pipeline._scaler._scalers),
    }
    arrays: dict[str, object] = {"manifest": json.dumps(manifest)}
    for i, value in enumerate(model.get_state()):
        arrays[f"param_{i:04d}"] = value
    for name, scaler in pipeline._scaler._scalers.items():
        assert scaler.mean_ is not None and scaler.scale_ is not None
        arrays[f"scaler_mean__{name}"] = scaler.mean_
        arrays[f"scaler_scale__{name}"] = scaler.scale_
    _atomic_savez(path, arrays)


def load_pipeline(path: str | Path) -> M2AIPipeline:
    """Load a pipeline saved by :func:`save_pipeline`.

    Raises:
        CheckpointError: for a missing, truncated, or corrupt file, a
            missing manifest field or array, or an unsupported format
            version — always naming the path and the failed field
            (:class:`CheckpointError` is a :class:`ValueError`).
    """
    path = Path(path)
    with _open_archive(path) as data:
        manifest = _read_manifest(data, path)
        version = _manifest_field(manifest, path, "format_version")
        if version != _FORMAT_VERSION:
            raise CheckpointError(
                path,
                f"unsupported checkpoint version {version}",
                field="format_version",
            )
        config_fields = dict(_manifest_field(manifest, path, "config"))
        # JSON stores tuples as lists; restore tuple-typed fields.
        for key, value in config_fields.items():
            if isinstance(value, list):
                config_fields[key] = tuple(value)
        config = M2AIConfig(**config_fields)
        mode = _manifest_field(manifest, path, "mode")
        pipeline = M2AIPipeline(config, mode=mode)

        encoder = LabelEncoder()
        encoder.classes_ = np.array(_manifest_field(manifest, path, "classes"))
        pipeline._encoder = encoder

        scaler = ChannelScaler()
        for name in _manifest_field(manifest, path, "scaler_channels"):
            inner = StandardScaler()
            inner.mean_ = _read_array(data, path, f"scaler_mean__{name}")
            inner.scale_ = _read_array(data, path, f"scaler_scale__{name}")
            scaler._scalers[name] = inner
        pipeline._scaler = scaler

        channel_shapes = {
            name: tuple(shape)
            for name, shape in _manifest_field(
                manifest, path, "channel_shapes"
            ).items()
        }
        model = M2AINet(
            channel_shapes=channel_shapes,
            n_classes=_manifest_field(manifest, path, "n_classes"),
            cfg=config,
            mode=mode,
            rng=np.random.default_rng(config.seed),
        )
        param_keys = sorted(k for k in data.files if k.startswith("param_"))
        params = [_read_array(data, path, k) for k in param_keys]
        try:
            model.set_state(params)
        except ValueError as exc:
            raise CheckpointError(path, str(exc), field="param_*") from exc
        pipeline.model = model
    return pipeline


def save_training_checkpoint(
    path: str | Path,
    epoch: int,
    model_state: list[np.ndarray],
    optimizer_state: dict,
    rng_state: dict,
    history: dict,
    best_val: float,
    best_state: list[np.ndarray] | None,
    model_rng_states: list[dict] | None = None,
) -> None:
    """Atomically persist mid-training state after an epoch.

    Everything ``Trainer.fit(resume_from=...)`` needs to continue the
    run bit-exact goes into one ``.npz``: the model parameters, the
    optimizer's slot arrays and scalars, the training RNG's
    bit-generator state, the history so far, and the best-snapshot
    tracking.

    Args:
        path: checkpoint destination.
        epoch: 0-based index of the epoch that just completed.
        model_state: ``Module.get_state()`` parameter arrays.
        optimizer_state: ``SGD.get_state()`` / ``Adam.get_state()``
            mapping; lists of arrays become ``opt_<slot>_NNNN``
            archive entries, scalars go into the manifest.
        rng_state: the training generator's
            ``rng.bit_generator.state`` dict.
        history: ``TrainHistory`` fields as plain lists.
        best_val: best validation accuracy seen so far.
        best_state: parameter snapshot at ``best_val`` (None when no
            validation ran).
        model_rng_states: bit-generator states of RNGs the *model*
            consumes during training (dropout masks) — without them a
            resumed run draws different masks and is no longer
            bit-exact.
    """
    path = Path(path)
    slot_names = sorted(
        k for k, v in optimizer_state.items() if isinstance(v, list)
    )
    manifest = {
        "format_version": _TRAIN_FORMAT_VERSION,
        "kind": "training-checkpoint",
        "epoch": int(epoch),
        "best_val": float(best_val),
        "rng_state": rng_state,
        "history": history,
        "optimizer": {
            k: v for k, v in optimizer_state.items() if not isinstance(v, list)
        },
        "optimizer_slots": slot_names,
        "n_params": len(model_state),
        "has_best": best_state is not None,
        "model_rng_states": model_rng_states or [],
    }
    arrays: dict[str, object] = {"manifest": json.dumps(manifest)}
    for i, value in enumerate(model_state):
        arrays[f"param_{i:04d}"] = value
    for slot in slot_names:
        for i, value in enumerate(optimizer_state[slot]):
            arrays[f"opt_{slot}_{i:04d}"] = value
    if best_state is not None:
        for i, value in enumerate(best_state):
            arrays[f"best_{i:04d}"] = value
    _atomic_savez(path, arrays)


def load_training_checkpoint(path: str | Path) -> dict:
    """Load a checkpoint written by :func:`save_training_checkpoint`.

    Returns:
        A dict with keys ``epoch``, ``best_val``, ``rng_state``,
        ``history``, ``model_state``, ``optimizer_state``,
        ``best_state`` (None when the run had no validation split) and
        ``model_rng_states`` (empty list for checkpoints written
        before dropout RNG capture).

    Raises:
        CheckpointError: for a missing, truncated, or corrupt file, an
            unsupported version, or a missing field/array.
    """
    path = Path(path)
    with _open_archive(path) as data:
        manifest = _read_manifest(data, path)
        version = _manifest_field(manifest, path, "format_version")
        if version != _TRAIN_FORMAT_VERSION:
            raise CheckpointError(
                path,
                f"unsupported training-checkpoint version {version}",
                field="format_version",
            )
        n_params = int(_manifest_field(manifest, path, "n_params"))
        model_state = [
            _read_array(data, path, f"param_{i:04d}") for i in range(n_params)
        ]
        optimizer_state = dict(_manifest_field(manifest, path, "optimizer"))
        for slot in _manifest_field(manifest, path, "optimizer_slots"):
            optimizer_state[slot] = [
                _read_array(data, path, f"opt_{slot}_{i:04d}")
                for i in range(n_params)
            ]
        best_state = None
        if _manifest_field(manifest, path, "has_best"):
            best_state = [
                _read_array(data, path, f"best_{i:04d}")
                for i in range(n_params)
            ]
        return {
            "epoch": int(_manifest_field(manifest, path, "epoch")),
            "best_val": float(_manifest_field(manifest, path, "best_val")),
            "rng_state": _manifest_field(manifest, path, "rng_state"),
            "history": _manifest_field(manifest, path, "history"),
            "model_state": model_state,
            "optimizer_state": optimizer_state,
            "best_state": best_state,
            # Absent in pre-dropout-aware checkpoints: default to none.
            "model_rng_states": manifest.get("model_rng_states", []),
        }
