"""Streaming identification over a continuous multi-activity log."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ActivityDataset, M2AIConfig, M2AIPipeline
from repro.core.streaming import StreamingIdentifier, WindowDecision
from repro.dsp.calibration import PhaseCalibrator
from repro.dsp.features import M2AIFeaturizer
from repro.geometry import Vec2, make_laboratory
from repro.hardware import (
    Reader,
    ReaderConfig,
    Scene,
    TagTrack,
    UniformLinearArray,
    concatenate_logs,
    make_tag,
)
from repro.motion import get_primitive, perform

WINDOW_S = 4.0
SLOT_S = 0.025


@pytest.fixture(scope="module")
def stream_setup():
    """Train a 2-class pipeline and build a continuous A-then-B log."""
    room = make_laboratory()
    array = UniformLinearArray(center=Vec2(room.bounds.width / 2.0, 0.3))
    reader = Reader(ReaderConfig(array=array), room, seed=17)
    rng = np.random.default_rng(4)
    anchor = Vec2(room.bounds.width / 2.0 + 0.8, 4.0)
    tags = [make_tag(f"S{i}", rng) for i in range(3)]

    def scene_for(primitive_name: str, t_offset: float, duration: float) -> Scene:
        n_slots = int(round(duration / SLOT_S))
        t = t_offset + (np.arange(n_slots) + 0.5) * SLOT_S
        motion = perform(
            get_primitive(primitive_name), anchor, t, rng, facing=np.pi / 2
        )
        tracks = tuple(
            TagTrack(tag=tags[i], positions=motion.tag_position(site), carrier=0)
            for i, site in enumerate(("hand", "arm", "shoulder"))
        )
        return Scene(tag_tracks=tracks, bodies=(motion.body_track(),))

    # Calibration bootstrap.
    calibration = reader.inventory(scene_for("stand_still", 0.0, 20.0), 20.0)
    calibrator = PhaseCalibrator.fit(calibration)

    # Training corpus: repeated executions of both activities.
    featurizer = M2AIFeaturizer()
    n_frames = int(round(WINDOW_S / reader.hopper.dwell_s))
    samples, labels = [], []
    for label, primitive in (("wave", "wave_hand"), ("walk", "walk_line")):
        for _rep in range(6):
            log = reader.inventory(scene_for(primitive, 0.0, WINDOW_S), WINDOW_S)
            psi = calibrator.calibrate(log)
            samples.append(
                featurizer.transform(log, psi, n_frames=n_frames, label=label)
            )
            labels.append(label)
    dataset = ActivityDataset(samples=samples, labels=labels)
    cfg = M2AIConfig(epochs=15, batch_size=6, warmup_frames=2, seed=1)
    pipeline = M2AIPipeline(cfg).fit(dataset)

    # Continuous stream: wave for 2 windows, then walk for 2 windows.
    part_a = reader.inventory(scene_for("wave_hand", 0.0, 2 * WINDOW_S), 2 * WINDOW_S)
    part_b = reader.inventory(
        scene_for("walk_line", 2 * WINDOW_S, 2 * WINDOW_S),
        2 * WINDOW_S,
        t0=2 * WINDOW_S,
    )
    stream = concatenate_logs([part_a, part_b])
    return pipeline, calibrator, stream


class TestStreamingIdentifier:
    def test_emits_one_decision_per_window(self, stream_setup):
        pipeline, calibrator, stream = stream_setup
        identifier = StreamingIdentifier(
            pipeline, calibrator=calibrator, window_s=WINDOW_S
        )
        decisions = identifier.identify(stream)
        assert len(decisions) == 4
        for d in decisions:
            assert isinstance(d, WindowDecision)
            assert d.t_end_s - d.t_start_s == pytest.approx(WINDOW_S)
            assert 0.0 < d.confidence <= 1.0
            assert d.label in ("wave", "walk")

    def test_majority_of_windows_correct(self, stream_setup):
        pipeline, calibrator, stream = stream_setup
        identifier = StreamingIdentifier(
            pipeline, calibrator=calibrator, window_s=WINDOW_S
        )
        decisions = identifier.identify(stream)
        truth = ["wave", "wave", "walk", "walk"]
        hits = sum(d.label == t for d, t in zip(decisions, truth))
        assert hits >= 3

    def test_overlapping_hop(self, stream_setup):
        pipeline, calibrator, stream = stream_setup
        identifier = StreamingIdentifier(
            pipeline, calibrator=calibrator, window_s=WINDOW_S, hop_s=WINDOW_S / 2
        )
        decisions = identifier.identify(stream)
        assert len(decisions) == 7  # (16 - 4) / 2 + 1

    def test_empty_log(self, stream_setup):
        pipeline, calibrator, stream = stream_setup
        identifier = StreamingIdentifier(pipeline, calibrator=calibrator)
        empty = stream.select(np.zeros(stream.n_reads, dtype=bool))
        assert identifier.identify(empty) == []

    def test_unfitted_rejected(self, stream_setup):
        _pipeline, calibrator, stream = stream_setup
        identifier = StreamingIdentifier(M2AIPipeline(), calibrator=calibrator)
        with pytest.raises(RuntimeError):
            identifier.identify(stream)
