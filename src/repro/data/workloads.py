"""Workload presets: quick (CI-sized) and full (paper-scale) configs.

Every experiment driver in :mod:`repro.eval` accepts one of these; the
quick presets keep the whole benchmark suite runnable in minutes on a
laptop while preserving every qualitative trend.
"""

from __future__ import annotations

from repro.core.config import M2AIConfig
from repro.data.generator import GenerationConfig
from repro.motion.scenarios import SCENARIO_LABELS


def quick_generation(seed: int = 0) -> GenerationConfig:
    """Small dataset: all 12 classes, 12 samples each, 6 s windows."""
    return GenerationConfig(
        samples_per_class=12,
        duration_s=6.0,
        calibration_s=20.0,
        seed=seed,
    )


def full_generation(seed: int = 0) -> GenerationConfig:
    """Paper-scale dataset: 12 classes x 24 samples."""
    return GenerationConfig(
        samples_per_class=24,
        duration_s=6.0,
        calibration_s=20.0,
        seed=seed,
    )


def tiny_generation(seed: int = 0) -> GenerationConfig:
    """Minimal smoke-test dataset: 4 classes, 3 samples each."""
    return GenerationConfig(
        scenario_labels=SCENARIO_LABELS[:4],
        samples_per_class=3,
        duration_s=4.0,
        calibration_s=20.0,
        seed=seed,
    )


def quick_training(seed: int = 0) -> M2AIConfig:
    """Training budget matched to the quick datasets."""
    return M2AIConfig(epochs=40, batch_size=16, seed=seed)


def full_training(seed: int = 0) -> M2AIConfig:
    """Training budget matched to the full datasets."""
    return M2AIConfig(epochs=60, batch_size=16, seed=seed)
