"""Tag bearing estimation and multi-array localization.

The paper's related work (RF-IDraw, Tagoram, D-Watch) uses exactly the
measurement stack built here for *positioning*; this module closes
that loop as an extension: the dominant MUSIC peak gives a per-array
bearing, and two or more arrays (an antenna hub) triangulate a 2-D tag
position by intersecting bearing rays in a least-squares sense.

M2AI itself deliberately does not need tag locations ("tags can be
arbitrarily placed"), so nothing in the classification pipeline
depends on this module — it exists because a deployment that already
has the hub usually wants both answers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.correlation import spatial_covariance
from repro.dsp.music import music_pseudospectrum
from repro.dsp.snapshots import build_snapshots
from repro.hardware.antenna import UniformLinearArray
from repro.hardware.llrp import ReadLog


@dataclass(frozen=True)
class BearingEstimate:
    """A per-array bearing to one tag.

    Attributes:
        angle_deg: estimated arrival angle from the array axis.
        power: pseudospectrum peak height (relative confidence).
        n_frames: frames that contributed.
    """

    angle_deg: float
    power: float
    n_frames: int


def estimate_bearing(
    log: ReadLog, psi: np.ndarray, tag: int, n_frames: int | None = None
) -> BearingEstimate:
    """Dominant arrival angle of one tag over a log.

    Averages the per-dwell MUSIC pseudospectra (angle-wise) and takes
    the global peak — robust against single-dwell fades.

    Raises:
        ValueError: when no frame has enough antennas observed.
    """
    snaps = build_snapshots(log, psi, tag, n_frames=n_frames)
    accumulated: np.ndarray | None = None
    angles: np.ndarray | None = None
    used = 0
    for f in range(snaps.n_frames):
        if not snaps.frame_valid(f):
            continue
        cov = spatial_covariance(snaps.z[f], snaps.valid[f])
        result = music_pseudospectrum(
            cov,
            spacing_m=log.meta.spacing_m,
            wavelength_m=float(snaps.wavelength_m[f]),
        )
        normalized = result.spectrum / result.spectrum.max()
        accumulated = normalized if accumulated is None else accumulated + normalized
        angles = result.angles_deg
        used += 1
    if accumulated is None or angles is None:
        raise ValueError(f"tag {tag}: no usable frames for bearing estimation")
    peak = int(np.argmax(accumulated))
    return BearingEstimate(
        angle_deg=float(angles[peak]),
        power=float(accumulated[peak] / used),
        n_frames=used,
    )


def bearing_ray(array: UniformLinearArray, angle_deg: float) -> tuple[np.ndarray, np.ndarray]:
    """Origin and unit direction of a bearing ray in room coordinates.

    The AoA angle is measured from the array axis; the returned
    direction points into the half-plane the array faces.
    """
    origin = np.asarray(array.center.as_tuple())
    theta = np.deg2rad(angle_deg)
    axis = np.asarray(array.axis_unit.as_tuple())
    normal = np.array([-axis[1], axis[0]])
    direction = np.cos(theta) * axis + np.sin(theta) * normal
    return origin, direction


def triangulate(
    arrays: list[UniformLinearArray], bearings_deg: list[float]
) -> np.ndarray:
    """Least-squares intersection of two or more bearing rays.

    Each ray contributes the constraint that the point lies on its
    line; the normal-equations solution minimises the summed squared
    perpendicular distances.

    Args:
        arrays: the observing arrays.
        bearings_deg: matching per-array AoA estimates.

    Returns:
        The ``(2,)`` estimated position.

    Raises:
        ValueError: with fewer than two rays or a degenerate geometry
            (near-parallel rays).
    """
    if len(arrays) != len(bearings_deg):
        raise ValueError("arrays and bearings must align")
    if len(arrays) < 2:
        raise ValueError("triangulation needs at least two arrays")
    a = np.zeros((2, 2))
    b = np.zeros(2)
    for array, bearing in zip(arrays, bearings_deg):
        origin, direction = bearing_ray(array, bearing)
        # Projector onto the ray's normal space.
        projector = np.eye(2) - np.outer(direction, direction)
        a += projector
        b += projector @ origin
    if abs(np.linalg.det(a)) < 1e-9:
        raise ValueError("degenerate geometry: bearing rays are parallel")
    return np.linalg.solve(a, b)


def localize_tag(
    logs: list[ReadLog],
    psis: list[np.ndarray],
    arrays: list[UniformLinearArray],
    tag: int,
) -> tuple[np.ndarray, list[BearingEstimate]]:
    """Position one tag from a hub's per-array logs.

    Args:
        logs: one read log per array.
        psis: matching calibrated doubled phases.
        arrays: the hub's arrays.
        tag: tag index (consistent across logs).

    Returns:
        ``(position, bearings)`` — the estimate and its evidence.
    """
    if not (len(logs) == len(psis) == len(arrays)):
        raise ValueError("logs, psis and arrays must align")
    bearings = [
        estimate_bearing(log, psi, tag) for log, psi in zip(logs, psis)
    ]
    position = triangulate(arrays, [b.angle_deg for b in bearings])
    return position, bearings
