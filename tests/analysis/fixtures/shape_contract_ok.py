"""RPR015 true-negative fixture: agreeing contracts, symbolic dims.

Symbols are wildcards and ellipses absorb stacking, so none of these
edges may be flagged.
"""

import numpy as np


def make_psd(n):
    """Produce a power spectrum.

    Returns:
        Power densities, shape: ``(N,)``.
    """
    return np.zeros(n)


def stack_psd(windows, n):
    """Produce stacked spectra.

    Returns:
        Stacked densities, shape: ``(W, N)``.
    """
    return np.zeros((windows, n))


def to_db(power):
    """Compress to decibels.

    Args:
        power: densities, any stacking, shape: ``(..., N)``.

    Returns:
        Decibels, shape: ``(..., N)``.
    """
    return np.log10(np.maximum(power, 1e-30))


def pipeline(windows, n):
    """Rank-1 and rank-2 producers both satisfy the ellipsis arg."""
    a = to_db(make_psd(n))
    s = stack_psd(windows, n)
    b = to_db(s)
    return a, b
