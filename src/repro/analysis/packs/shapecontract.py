"""RPR015: ``shape: (...)`` docstring tags checked as real contracts.

RPR008 forces spectrum producers to *write* shape tags; this rule
makes the tags load-bearing.  It parses every tag in the project into
a :class:`repro.analysis.dataflow.shapes.ShapeContract` and reports:

* **malformed tags** — a tag that RPR008 accepts lexically but that
  does not parse into dims is documentation pretending to be a
  contract;
* **producer/consumer conflicts** — a call site where a value whose
  producer documents ``shape: (F, n_tags, 180)`` flows into a
  parameter documented with an incompatible shape.  Both the direct
  nesting ``g(f(...))`` and the one-hop assignment ``x = f(...);
  g(x)`` are checked, the latter via the forward-dataflow engine so
  rebinding ``x`` on any path clears the tracked contract.

Symbolic dims are wildcards (``(F, N)`` never conflicts with
``(W, N)``); only literal-int and rank mismatches are reported, so the
rule stays silent unless the docs are provably inconsistent.  The
runtime twin of this rule is ``anomaly_detection(check_contracts=True)``,
which asserts concrete output shapes against the same parsed
contracts.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow.cfg import build_cfg
from repro.analysis.dataflow.engine import ForwardAnalysis, run_forward
from repro.analysis.dataflow.project import FunctionInfo, ModuleInfo, Project
from repro.analysis.dataflow.shapes import (
    ContractParseError,
    FunctionContracts,
    ShapeContract,
    extract_contracts,
)
from repro.analysis.rules import (
    Finding,
    ProjectContext,
    ProjectRule,
    register_project_rule,
)

__all__ = ["ShapeContractRule"]

_UNKNOWN: tuple[ShapeContract, ...] = ()
"""Lattice top: the variable's producer contract is not tracked."""


def _param_names(fn: FunctionInfo) -> list[str]:
    """Positional parameter names, with ``self``/``cls`` dropped."""
    a = fn.node.args
    names = [p.arg for p in a.posonlyargs + a.args]
    if fn.class_name is not None and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


class _ContractFlow(ForwardAnalysis):
    """Track which variables hold values from contract-documented calls."""

    def __init__(
        self,
        module: ModuleInfo,
        project: Project,
        contracts: dict[str, FunctionContracts],
    ) -> None:
        self.module = module
        self.project = project
        self.contracts = contracts

    def lub(self, a: object, b: object) -> object:
        return a if a == b else _UNKNOWN

    def producer_returns(self, expr: ast.expr) -> tuple[ShapeContract, ...]:
        """Return contracts of the producer behind ``expr``, if any."""
        if not isinstance(expr, ast.Call):
            return _UNKNOWN
        fn = self.project.resolve_function(self.module, expr.func)
        if fn is None:
            return _UNKNOWN
        found = self.contracts.get(fn.qualname)
        return found.returns if found is not None else _UNKNOWN

    def transfer(self, stmt: ast.stmt, state: dict[str, object]) -> dict[str, object]:
        state = dict(state)
        if isinstance(stmt, ast.Assign):
            value = self.producer_returns(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state[target.id] = value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            state[stmt.target.id] = (
                self.producer_returns(stmt.value) if stmt.value else _UNKNOWN
            )
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            state[stmt.target.id] = _UNKNOWN
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(stmt.target):
                if isinstance(sub, ast.Name):
                    state[sub.id] = _UNKNOWN
        return state


@register_project_rule
class ShapeContractRule(ProjectRule):
    """RPR015: parse every shape tag; flag conflicts between them.

    See the module docstring for the producer/consumer semantics.  A
    malformed tag is itself a finding — an unparseable contract
    protects nothing.
    """

    code = "RPR015"
    name = "shape-contract"
    description = (
        "shape: (...) docstring tags must parse, and producer/consumer "
        "contracts must agree at call sites (rank and literal dims)"
    )
    hint = (
        "fix the tag to `shape: (dim, ...)` with int/symbol dims, or "
        "reconcile the producer and consumer docstrings"
    )

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        """Yield malformed-tag and contract-conflict findings."""
        project = ctx.project
        contracts: dict[str, FunctionContracts] = {}
        for info in project.modules.values():
            for fn in info.functions.values():
                doc = ast.get_docstring(fn.node, clean=True)
                try:
                    found = extract_contracts(doc)
                except ContractParseError as exc:
                    yield self.finding_at(
                        info.path,
                        fn.node,
                        f"malformed shape tag in {fn.qualname}() docstring: {exc}",
                    )
                    continue
                if not found.empty:
                    contracts[fn.qualname] = found
        for info in project.modules.values():
            yield from self._check_module(info, project, contracts)

    # -- call-site checking ----------------------------------------------

    def _check_module(
        self,
        info: ModuleInfo,
        project: Project,
        contracts: dict[str, FunctionContracts],
    ) -> Iterator[Finding]:
        flow = _ContractFlow(info, project, contracts)
        for fn in info.functions.values():
            cfg = build_cfg(fn.node)
            per_stmt = run_forward(cfg, flow)
            for bid, block in cfg.blocks.items():
                for stmt, entry in zip(block.stmts, per_stmt[bid]):
                    yield from self._check_stmt(info, flow, contracts, stmt, entry)

    def _check_stmt(
        self,
        info: ModuleInfo,
        flow: _ContractFlow,
        contracts: dict[str, FunctionContracts],
        stmt: ast.stmt,
        entry: dict[str, object],
    ) -> Iterator[Finding]:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            callee = flow.project.resolve_function(info, node.func)
            if callee is None:
                continue
            want = contracts.get(callee.qualname)
            if want is None or not want.args:
                continue
            names = _param_names(callee)
            for index, arg in enumerate(node.args):
                if index >= len(names):
                    break
                yield from self._check_arg(
                    info, flow, entry, node, callee, want, names[index], arg
                )
            for kw in node.keywords:
                if kw.arg is not None:
                    yield from self._check_arg(
                        info, flow, entry, node, callee, want, kw.arg, kw.value
                    )

    def _check_arg(
        self,
        info: ModuleInfo,
        flow: _ContractFlow,
        entry: dict[str, object],
        call: ast.Call,
        callee: FunctionInfo,
        want: FunctionContracts,
        param: str,
        arg: ast.expr,
    ) -> Iterator[Finding]:
        expected = want.args.get(param)
        if expected is None:
            return
        if isinstance(arg, ast.Name):
            produced = entry.get(arg.id, _UNKNOWN)
        else:
            produced = flow.producer_returns(arg)
        if not produced:
            return
        # Conservative: only flag when EVERY documented producer
        # contract conflicts with the consumer's expectation.
        details = []
        for contract in produced:  # type: ignore[union-attr]
            detail = contract.conflict_with(expected)
            if detail is None:
                return
            details.append(detail)
        yield self.finding_at(
            info.path,
            arg,
            f"shape contract conflict: argument {param!r} of "
            f"{callee.qualname}() expects shape: ({expected.raw}) but the "
            f"producer documents {details[0]}",
        )
