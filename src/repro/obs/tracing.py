"""Zero-dependency tracing core: nested wall/CPU span trees.

The realtime claim of the paper ("examines both spatial and temporal
information in realtime") is only testable when every stage of the
ingest → DSP → inference path can answer "how long did *you* take for
this window?".  :func:`span` is that answer: a context manager that
times the enclosed block with both ``perf_counter`` (wall clock) and
``process_time`` (CPU), nests naturally — a span opened while another
is active becomes its child — and hands finished root spans to a
thread-safe in-process :class:`SpanCollector`.

Instrumentation is **off by default**.  While disabled, :func:`span`
returns a shared no-op object whose ``with`` protocol does nothing, so
an instrumented hot path pays only a flag check and an empty context
manager — the measured overhead contract is <2% on
``StreamingIdentifier.identify`` (see ``tests/obs/test_overhead.py``).
Enable explicitly with :func:`enable` (or export ``REPRO_OBS=1``
before importing).

Span naming convention (see DESIGN.md §9): dotted lowercase
``subsystem.operation`` — ``dsp.music``, ``streaming.window``,
``nn.forward``.  On exit every live span also observes its wall-clock
duration into the ``<name>.latency_ms`` histogram of the default
metrics registry, so the metrics export mirrors the trace without
extra call-site code.  That bookkeeping is best-effort: a span name
the registry rejects (or a metric-kind clash) increments the
``obs.dropped_observations_total`` counter instead of raising into
the instrumented operation.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Span",
    "SpanCollector",
    "disable",
    "enable",
    "get_collector",
    "is_enabled",
    "render_span_tree",
    "span",
    "walk_spans",
]

_ENABLED = False

_local = threading.local()


@dataclass
class Span:
    """One finished (or in-flight) timed region.

    Attributes:
        name: dotted stage name (``dsp.music``).
        attrs: free-form call-site attributes (window index, tag id).
        t_start_s: absolute start time (``time.time`` epoch seconds).
        wall_ms: wall-clock duration; 0 until the span closes.
        cpu_ms: CPU (process) time consumed; 0 until the span closes.
        thread: name of the thread the span ran on.
        children: spans opened (and closed) while this one was active.
    """

    name: str
    attrs: dict = field(default_factory=dict)
    t_start_s: float = 0.0
    wall_ms: float = 0.0
    cpu_ms: float = 0.0
    thread: str = ""
    children: list["Span"] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-ready recursive representation."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "t_start_s": self.t_start_s,
            "wall_ms": self.wall_ms,
            "cpu_ms": self.cpu_ms,
            "thread": self.thread,
            "children": [c.as_dict() for c in self.children],
        }


class SpanCollector:
    """Thread-safe sink for finished root spans.

    Child spans attach to their parent on the opening thread (no lock
    needed: the parent is thread-local); only *root* spans cross the
    lock into the shared list.  A bounded capacity keeps a long-running
    service from accumulating spans without a consumer: past
    ``max_roots`` new roots are counted in :attr:`dropped` instead of
    stored.
    """

    def __init__(self, max_roots: int = 100_000) -> None:
        """Create an empty collector holding at most ``max_roots`` roots."""
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self.max_roots = max_roots
        self.dropped = 0

    def add_root(self, s: Span) -> None:
        """Store one finished root span (or count it as dropped)."""
        with self._lock:
            if len(self._roots) >= self.max_roots:
                self.dropped += 1
            else:
                self._roots.append(s)

    def snapshot(self) -> list[Span]:
        """Current root spans without clearing them."""
        with self._lock:
            return list(self._roots)

    def drain(self) -> list[Span]:
        """Return all root spans and clear the collector."""
        with self._lock:
            roots, self._roots = self._roots, []
            self.dropped = 0
            return roots

    def durations_by_name(self) -> dict[str, list[float]]:
        """Wall-clock durations (ms) of every span, grouped by name.

        Walks the whole tree, so nested stages (a ``dsp.music`` span
        inside a ``dsp.frames.build`` span) are aggregated too.
        """
        by_name: dict[str, list[float]] = {}
        for s in walk_spans(self.snapshot()):
            by_name.setdefault(s.name, []).append(s.wall_ms)
        return by_name


_collector = SpanCollector()


def get_collector() -> SpanCollector:
    """The process-global span collector."""
    return _collector


def is_enabled() -> bool:
    """Whether tracing/metrics instrumentation is currently armed."""
    return _ENABLED


def enable() -> None:
    """Arm instrumentation: spans are recorded, metrics are live."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Disarm instrumentation; :func:`span` reverts to the no-op path."""
    global _ENABLED
    _ENABLED = False


class _NoopSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        """No-op; returns itself so call sites can hold a handle."""
        return self

    def __exit__(self, *exc: object) -> None:
        """No-op."""
        return None

    def set(self, **attrs: object) -> None:
        """Ignore attributes on the disabled path."""
        return None


_NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """An armed span: times the block and files itself in the tree."""

    __slots__ = ("record", "_t0_wall", "_t0_cpu")

    def __init__(self, name: str, attrs: dict) -> None:
        """Prepare a span named ``name`` carrying ``attrs``."""
        self.record = Span(
            name=name, attrs=attrs, thread=threading.current_thread().name
        )

    def __enter__(self) -> "_LiveSpan":
        stack = _span_stack()
        stack.append(self.record)
        # Epoch stamp for export only; durations below use perf_counter.
        self.record.t_start_s = time.time()  # reprolint: disable=RPR010
        self._t0_cpu = time.process_time()
        self._t0_wall = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        wall_ms = (time.perf_counter() - self._t0_wall) * 1e3
        cpu_ms = (time.process_time() - self._t0_cpu) * 1e3
        record = self.record
        record.wall_ms = wall_ms
        record.cpu_ms = cpu_ms
        stack = _span_stack()
        # Unwind to this span even if an inner block escaped via an
        # exception without closing its own span.
        while stack and stack[-1] is not record:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(record)
        else:
            _collector.add_root(record)
        from repro.obs import metrics

        # Telemetry must never abort the instrumented operation: a bad
        # span name or a kind clash in the registry is counted as a
        # dropped observation, not raised into application code.
        try:
            metrics.get_registry().histogram(
                f"{record.name}.latency_ms"
            ).observe(wall_ms)
        except Exception:
            try:
                metrics.get_registry().counter(
                    "obs.dropped_observations_total"
                ).inc()
            except Exception:  # pragma: no cover - registry unusable
                _note_unrecorded_drop()
        return None

    def set(self, **attrs: object) -> None:
        """Attach or update attributes on the open span."""
        self.record.attrs.update(attrs)


_unrecorded_drops = 0


def _note_unrecorded_drop() -> None:
    """Last-resort tally when even the dropped-observations counter fails."""
    global _unrecorded_drops
    _unrecorded_drops += 1


def _span_stack() -> list[Span]:
    """This thread's stack of currently-open spans."""
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def span(name: str, **attrs: object) -> _LiveSpan | _NoopSpan:
    """Time a block as a named span: ``with span("dsp.music"): ...``.

    When instrumentation is disabled (the default) this returns a
    shared no-op object — the call is a flag check plus an empty
    ``with``, cheap enough for per-frame DSP hot paths.

    Args:
        name: dotted stage name (``subsystem.operation``).
        **attrs: free-form attributes stored on the span.

    Returns:
        A context manager; when armed, its ``.record`` is the
        :class:`Span` being built and ``.set(**attrs)`` adds
        attributes mid-flight.
    """
    if not _ENABLED:
        return _NOOP_SPAN
    return _LiveSpan(name, dict(attrs))


def walk_spans(roots: list[Span]) -> Iterator[Span]:
    """Depth-first iteration over span trees (parents before children)."""
    stack = list(reversed(roots))
    while stack:
        s = stack.pop()
        yield s
        stack.extend(reversed(s.children))


def render_span_tree(roots: list[Span], max_depth: int = 12) -> str:
    """ASCII rendering of span trees for terminal dumps.

    Args:
        roots: root spans (e.g. ``get_collector().drain()``).
        max_depth: deepest level rendered; deeper spans are elided.

    Returns:
        One line per span: indentation, name, wall/CPU ms, attributes.
    """
    lines: list[str] = []

    def _render(s: Span, depth: int) -> None:
        if depth > max_depth:
            return
        attrs = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(s.attrs.items()))
            if s.attrs
            else ""
        )
        lines.append(
            f"{'  ' * depth}{s.name}  wall={s.wall_ms:.3f}ms "
            f"cpu={s.cpu_ms:.3f}ms{attrs}"
        )
        for child in s.children:
            _render(child, depth + 1)

    for root in roots:
        _render(root, 0)
    return "\n".join(lines)


if os.environ.get("REPRO_OBS", "").lower() in ("1", "true", "yes", "on"):
    enable()
