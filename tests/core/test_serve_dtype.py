"""Float32 serve path: parity gate, cast-once semantics, enforcement.

Covers the deployment contract end to end: ``set_serve_dtype`` only
installs a float32 pack whose argmax decisions match float64 exactly,
``cast_once`` refuses narrow casts outside ``inference_mode()`` and
freezes what it casts, the runtime sanitizer trips on a narrow serve
model run outside the scope, and the streaming identifier's
``serve_dtype`` guard catches a pack silently dropped by a retrain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitize import AnomalyError, anomaly_detection
from repro.core import (
    M2AIConfig,
    M2AIPipeline,
    SERVE_DTYPES,
    ServeParityError,
)
from repro.core.streaming import StreamingIdentifier
from repro.nn import LSTM, cast_once
from repro.nn.module import INFERENCE_DTYPE, inference_mode

from tests.core.test_trainer_pipeline import synthetic_dataset

TINY_CFG = M2AIConfig(
    conv_channels=(3, 4),
    branch_dim=6,
    merge_dim=8,
    lstm_hidden=6,
    lstm_layers=1,
    dropout=0.0,
    epochs=25,
    batch_size=8,
    learning_rate=0.01,
    warmup_frames=1,
    augment=False,
)


@pytest.fixture(scope="module")
def splits():
    ds = synthetic_dataset(per_class=10)
    return ds.split(0.25, np.random.default_rng(0))


@pytest.fixture(scope="module")
def fitted(splits):
    train, test = splits
    return M2AIPipeline(TINY_CFG).fit(train)


@pytest.fixture()
def pipeline(fitted):
    """The module-scoped fitted pipeline, reset to float64 per test."""
    fitted.set_serve_dtype("float64")
    yield fitted
    fitted.set_serve_dtype("float64")


class TestParityGate:
    def test_accept_installs_pack_and_preserves_decisions(self, pipeline, splits):
        _train, test = splits
        labels64 = pipeline.predict(test)
        report = pipeline.set_serve_dtype("float32", parity=test)
        assert report["accepted"] is True
        assert report["n_mismatches"] == 0
        assert report["n_windows"] == len(test)
        assert report["max_abs_proba_delta"] < 1e-5
        assert pipeline.serve_dtype == "float32"
        # Decisions through the serve pack equal the float64 reference.
        np.testing.assert_array_equal(pipeline.predict(test), labels64)

    def test_proba_widened_to_float64(self, pipeline, splits):
        _train, test = splits
        pipeline.set_serve_dtype("float32", parity=test)
        proba = pipeline.predict_proba(test)
        assert proba.dtype == np.float64

    def test_idempotent_reenable_returns_same_report(self, pipeline, splits):
        _train, test = splits
        first = pipeline.set_serve_dtype("float32", parity=test)
        pack = pipeline._serve_model
        # No parity set needed the second time: nothing is re-validated.
        second = pipeline.set_serve_dtype("float32")
        assert second == first
        assert pipeline._serve_model is pack

    def test_reject_discards_pack(self, pipeline, splits, monkeypatch):
        _train, test = splits
        original = M2AIPipeline._serve_proba

        def corrupted(self, channels):
            # Reverse the class columns: every argmax decision flips.
            return original(self, channels)[:, ::-1]

        monkeypatch.setattr(M2AIPipeline, "_serve_proba", corrupted)
        with pytest.raises(ServeParityError, match="parity gate rejected"):
            pipeline.set_serve_dtype("float32", parity=test)
        assert pipeline.serve_dtype == "float64"
        assert pipeline._serve_model is None

    def test_float32_requires_parity_dataset(self, pipeline):
        with pytest.raises(ValueError, match="parity"):
            pipeline.set_serve_dtype("float32")

    def test_unknown_dtype_rejected(self, pipeline):
        with pytest.raises(ValueError, match="serve_dtype"):
            pipeline.set_serve_dtype("float16")
        assert "float16" not in SERVE_DTYPES

    def test_unfitted_pipeline_rejected(self, splits):
        _train, test = splits
        with pytest.raises(RuntimeError, match="not fitted"):
            M2AIPipeline(TINY_CFG).set_serve_dtype("float32", parity=test)

    def test_float64_drops_pack(self, pipeline, splits):
        _train, test = splits
        pipeline.set_serve_dtype("float32", parity=test)
        report = pipeline.set_serve_dtype("float64")
        assert report == {"serve_dtype": "float64", "accepted": True}
        assert pipeline.serve_dtype == "float64"
        assert pipeline._serve_model is None

    def test_fine_tune_invalidates_pack(self, pipeline, splits):
        train, test = splits
        pipeline.set_serve_dtype("float32", parity=test)
        pipeline.fine_tune(train, epochs=1)
        assert pipeline.serve_dtype == "float64"
        assert pipeline._serve_model is None


class TestCastOnce:
    def test_narrow_cast_requires_inference_mode(self):
        lstm = LSTM(3, 4, np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="inference_mode"):
            cast_once(lstm, np.float32)

    def test_casts_freeze_and_zero_grads(self):
        lstm = LSTM(3, 4, np.random.default_rng(0))
        lstm.w_x.grad += 1.0
        with inference_mode():
            cast_once(lstm, INFERENCE_DTYPE)
        for p in lstm.parameters():
            assert p.value.dtype == np.float32
            assert p.grad.dtype == np.float32
            assert not p.value.flags.writeable
            np.testing.assert_allclose(p.grad, 0.0)

    def test_idempotent_recast(self):
        lstm = LSTM(3, 4, np.random.default_rng(0))
        with inference_mode():
            cast_once(lstm, INFERENCE_DTYPE)
            before = lstm.w_x.value
            cast_once(lstm, INFERENCE_DTYPE)
        # Same-dtype recast re-freezes without replacing the buffers.
        assert lstm.w_x.value is before
        assert not lstm.w_x.value.flags.writeable

    def test_frozen_weights_fail_loudly_on_mutation(self):
        lstm = LSTM(3, 4, np.random.default_rng(0))
        state = lstm.get_state()
        with inference_mode():
            cast_once(lstm, INFERENCE_DTYPE)
        with pytest.raises(ValueError, match="read-only"):
            lstm.w_x.value += 0.1
        with pytest.raises(ValueError, match="read-only"):
            lstm.set_state(state)

    def test_widening_cast_allowed_outside_scope(self):
        lstm = LSTM(3, 4, np.random.default_rng(0))
        cast_once(lstm, np.float64)  # no-op width: legal anywhere
        assert lstm.w_x.value.dtype == np.float64

    def test_non_float_target_rejected(self):
        lstm = LSTM(3, 4, np.random.default_rng(0))
        with pytest.raises(TypeError, match="floating"):
            cast_once(lstm, np.int32)


class TestSanitizerEnforcement:
    def test_float32_serve_outside_inference_mode_trips(self, pipeline, splits):
        """A narrow serve model run without the scope must fail at its
        first layer — the regression the parameter-value dtype check in
        the sanitizer exists for."""
        _train, test = splits
        pipeline.set_serve_dtype("float32", parity=test)
        serve = pipeline._serve_model
        channels, _ = test.to_arrays()
        channels = pipeline._scaler.transform(channels)
        narrow = {k: v.astype(INFERENCE_DTYPE) for k, v in channels.items()}
        with anomaly_detection(wrap_dsp=False):
            with pytest.raises(AnomalyError) as err:
                serve.predict_logits(narrow)
            assert err.value.kind == "dtype_drift"
            # Inside the scope the same call is sanctioned.
            with inference_mode():
                serve.predict_logits(narrow)

    def test_serve_proba_is_sanitizer_clean(self, pipeline, splits):
        """The pipeline's own serve path opens the scope itself."""
        _train, test = splits
        pipeline.set_serve_dtype("float32", parity=test)
        with anomaly_detection(wrap_dsp=False):
            proba = pipeline.predict_proba(test)
        assert proba.dtype == np.float64


class TestStreamingGuard:
    def test_guard_rejects_missing_pack(self, pipeline, splits):
        _train, test = splits
        identifier = StreamingIdentifier(pipeline, serve_dtype="float32")
        with pytest.raises(RuntimeError, match="serving 'float64'"):
            identifier.predict_prepared(list(test.samples[:1]))

    def test_guard_passes_with_pack_installed(self, pipeline, splits):
        _train, test = splits
        pipeline.set_serve_dtype("float32", parity=test)
        identifier = StreamingIdentifier(pipeline, serve_dtype="float32")
        proba = identifier.predict_prepared(list(test.samples[:2]))
        assert proba.shape == (2, 3)

    def test_guard_catches_retrain_invalidation(self, pipeline, splits):
        train, test = splits
        pipeline.set_serve_dtype("float32", parity=test)
        identifier = StreamingIdentifier(pipeline, serve_dtype="float32")
        identifier.predict_prepared(list(test.samples[:1]))
        pipeline.fine_tune(train, epochs=1)  # silently drops the pack
        with pytest.raises(RuntimeError, match="refit/fine-tune"):
            identifier.predict_prepared(list(test.samples[:1]))

    def test_no_guard_by_default(self, pipeline, splits):
        _train, test = splits
        identifier = StreamingIdentifier(pipeline)
        proba = identifier.predict_prepared(list(test.samples[:1]))
        assert proba.shape[0] == 1
