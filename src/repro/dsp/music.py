"""MUSIC pseudospectrum estimation (Section III-C.1, Eq. 7-12).

MUltiple SIgnal Classification splits the spatial covariance into
signal and noise subspaces and scans a steering vector over candidate
angles; the pseudospectrum peaks where the steering vector falls inside
the signal subspace (Eq. 12).

One backscatter-specific twist: phases here live in the *doubled*
domain (round-trip propagation x2, pi-ambiguity folding x2), so the
per-element steering phase is ``4 * 2*pi*D*cos(theta)/lambda`` rather
than the textbook ``2*pi*D*cos(theta)/lambda``.  With the paper's
D = lambda/8 spacing this lands exactly on the unambiguous half-
wavelength design point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.tracing import span

PHASE_MULTIPLIER = 4.0
"""Round-trip (x2) times ambiguity folding (x2)."""

DEFAULT_ANGLES_DEG = np.arange(0.5, 180.5, 1.0)
"""The paper's 180-point angle grid."""


def steering_matrix(
    angles_deg: np.ndarray,
    n_antennas: int,
    spacing_m: float,
    wavelength_m: float,
    phase_multiplier: float = PHASE_MULTIPLIER,
    element_indices: np.ndarray | None = None,
) -> np.ndarray:
    """Array steering vectors (Eq. 8) for a grid of angles.

    Args:
        angles_deg: candidate arrival angles, degrees from the array
            axis.
        n_antennas: number of ULA elements.
        spacing_m: element spacing.
        wavelength_m: carrier wavelength.
        phase_multiplier: phase-per-metre multiplier of the measurement
            domain (4 for calibrated doubled backscatter phases).
        element_indices: positions (in units of ``spacing_m``) of the
            elements actually used — a *sparse* subarray when ports are
            dead.  Defaults to the full ULA ``0..n_antennas-1``; when
            given, its length must be ``n_antennas``.

    Returns:
        ``(N, A)`` complex matrix, one column per angle.
    """
    angles = np.deg2rad(np.asarray(angles_deg, dtype=np.float64))
    per_element = (
        phase_multiplier * 2.0 * np.pi * spacing_m * np.cos(angles) / wavelength_m
    )
    if element_indices is None:
        idx = np.arange(n_antennas)[:, None]
    else:
        idx = np.asarray(element_indices, dtype=np.float64)[:, None]
        if idx.shape[0] != n_antennas:
            raise ValueError("element_indices must match n_antennas")
    # Sign convention: element i sits at +i*D along the array axis, so a
    # source at angle theta (measured from that axis) is *closer* to
    # higher-index elements by i*D*cos(theta); the measured propagation
    # phase -k*d therefore *grows* with i.
    return np.exp(+1j * idx * per_element[None, :])


def estimate_n_sources(
    eigenvalues: np.ndarray, max_sources: int | None = None, gap_ratio: float = 0.08
) -> int:
    """Signal-subspace dimension from the eigenvalue profile.

    Counts eigenvalues above ``gap_ratio`` of the largest — a simple,
    robust rule for small arrays (MDL/AIC need more snapshots than a
    4-element dwell provides).

    Returns:
        An integer in ``[1, N-1]``.
    """
    lam = np.sort(np.abs(np.asarray(eigenvalues)))[::-1]
    n = lam.size
    cap = max_sources if max_sources is not None else n - 1
    cap = max(1, min(cap, n - 1))
    count = int(np.sum(lam > gap_ratio * lam[0]))
    return max(1, min(count, cap))


@dataclass(frozen=True)
class MusicResult:
    """Pseudospectrum plus the subspace split that produced it.

    Attributes:
        angles_deg: the evaluation grid.
        spectrum: pseudospectrum values (Eq. 12), same length.
        n_sources: estimated signal-subspace dimension.
        eigenvalues: covariance eigenvalues, descending.
    """

    angles_deg: np.ndarray
    spectrum: np.ndarray
    n_sources: int
    eigenvalues: np.ndarray

    def peaks(self, max_peaks: int = 5) -> list[tuple[float, float]]:
        """Local maxima as ``(angle_deg, power)``, strongest first."""
        s = self.spectrum
        idx = [
            i
            for i in range(1, len(s) - 1)
            if s[i] >= s[i - 1] and s[i] >= s[i + 1]
        ]
        idx.sort(key=lambda i: -s[i])
        return [(float(self.angles_deg[i]), float(s[i])) for i in idx[:max_peaks]]


def music_pseudospectrum(
    covariance: np.ndarray,
    spacing_m: float,
    wavelength_m: float,
    angles_deg: np.ndarray | None = None,
    n_sources: int | None = None,
    phase_multiplier: float = PHASE_MULTIPLIER,
    element_indices: np.ndarray | None = None,
) -> MusicResult:
    """Compute the MUSIC pseudospectrum of one covariance matrix.

    Args:
        covariance: ``(N, N)`` Hermitian spatial covariance.
        spacing_m: array element spacing.
        wavelength_m: carrier wavelength of the dwell.
        angles_deg: evaluation grid (paper default: 180 angles).
        n_sources: force the signal-subspace dimension; estimated from
            the eigenvalue gap when None.
        phase_multiplier: see :func:`steering_matrix`.
        element_indices: physical positions of the covariance's
            elements, for a covariance already shrunk to the *live*
            ports of a degraded array (see
            :func:`masked_pseudospectrum`).  None means the full
            contiguous ULA.

    Returns:
        A :class:`MusicResult` whose spectrum has shape: ``(A,)`` for
        ``A`` grid angles (paper default 180).

    Raises:
        ValueError: for a non-square covariance.
    """
    r = np.asarray(covariance, dtype=np.complex128)
    if r.ndim != 2 or r.shape[0] != r.shape[1]:
        raise ValueError("covariance must be square")
    grid = DEFAULT_ANGLES_DEG if angles_deg is None else np.asarray(angles_deg)

    with span("dsp.music", elements=int(r.shape[0])):
        eigvals, eigvecs = np.linalg.eigh(r)
        order = np.argsort(eigvals)[::-1]
        eigvals = eigvals[order].real
        eigvecs = eigvecs[:, order]

        m = n_sources if n_sources is not None else estimate_n_sources(eigvals)
        m = max(1, min(m, r.shape[0] - 1))
        noise = eigvecs[:, m:]

        a = steering_matrix(
            grid, r.shape[0], spacing_m, wavelength_m, phase_multiplier,
            element_indices=element_indices,
        )
        proj = noise.conj().T @ a
        denom = np.maximum(np.sum(np.abs(proj) ** 2, axis=0), 1e-12)
        spectrum = 1.0 / denom
    return MusicResult(
        angles_deg=np.asarray(grid, dtype=np.float64),
        spectrum=spectrum,
        n_sources=m,
        eigenvalues=eigvals,
    )


def masked_pseudospectrum(
    snapshots: np.ndarray,
    valid: np.ndarray,
    liveness: np.ndarray,
    spacing_m: float,
    wavelength_m: float,
    angles_deg: np.ndarray | None = None,
    n_sources: int | None = None,
    phase_multiplier: float = PHASE_MULTIPLIER,
) -> MusicResult:
    """MUSIC over the live subarray of a degraded antenna array.

    Instead of silently ingesting zero columns for dead ports (which
    biases the covariance and plants spurious nulls), the correlation
    matrix is shrunk to the surviving elements and the steering vectors
    are evaluated at their true, possibly non-contiguous positions.
    With every port live this is exactly the full-array pipeline.

    Args:
        snapshots: ``(K, N)`` complex snapshots over the *full* array.
        valid: ``(K, N)`` observation mask.
        liveness: ``(N,)`` port-liveness mask; at least two ports must
            be live for an angle spectrum to exist.
        spacing_m: full-array element spacing.
        wavelength_m: carrier wavelength.
        angles_deg: evaluation grid.
        n_sources: forced signal-subspace dimension.
        phase_multiplier: see :func:`steering_matrix`.

    Returns:
        A :class:`MusicResult` whose spectrum has shape: ``(A,)`` for
        ``A`` grid angles, regardless of how many ports survive.

    Raises:
        ValueError: when fewer than two ports are live.
    """
    from repro.dsp.correlation import spatial_covariance
    from repro.obs.metrics import counter

    live = np.asarray(liveness, dtype=bool)
    if int(live.sum()) < 2:
        raise ValueError("need at least two live ports for AoA")
    counter("dsp.music.masked_total").inc()
    if live.all():
        cov = spatial_covariance(snapshots, valid)
        return music_pseudospectrum(
            cov, spacing_m, wavelength_m, angles_deg, n_sources, phase_multiplier
        )
    indices = np.flatnonzero(live)
    # Forward-backward averaging requires a mirror-symmetric element
    # layout; a ragged surviving subarray (e.g. ports 0, 1, 3) is not,
    # so FB is only kept when the survivors stay uniformly spaced.
    gaps = np.diff(indices)
    uniform = bool(gaps.size == 0 or np.all(gaps == gaps[0]))
    cov = spatial_covariance(
        snapshots[:, indices], valid[:, indices], use_forward_backward=uniform
    )
    return music_pseudospectrum(
        cov,
        spacing_m,
        wavelength_m,
        angles_deg,
        n_sources,
        phase_multiplier,
        element_indices=indices,
    )
