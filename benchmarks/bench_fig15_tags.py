"""Fig. 15: 1 -> 3 tags per person.  Extra tags are the cheapest way
to add path diversity, so accuracy rises with the tag count."""

from repro.eval import run_fig15


def test_fig15_tags_per_person(run_experiment):
    result = run_experiment(run_fig15)
    measured = result.measured_by_name()
    # Shape check: 3 tags beat (or at worst match) 1 —
    # a small tolerance absorbs the trimmed training budget.
    assert measured["3 tag(s)/person"] >= measured["1 tag(s)/person"] - 0.05
