"""Fig. 16: preprocessing ablation.  The joint pseudospectrum +
periodogram input beats MUSIC-only, FFT-only, raw-phase and RSSI
featurisations of the *same* recordings."""

from repro.eval import run_fig16


def test_fig16_preprocessing_inputs(run_experiment):
    result = run_experiment(run_fig16)
    measured = result.measured_by_name()
    # Shape check: the full M2AI preprocessing is at least as good as
    # the coarse featurisations the paper shows losing badly.
    assert measured["M2AI"] >= measured["RSSI-based"]
    assert measured["M2AI"] >= measured["Phase-based"]
