"""Extension drivers (fast ones; the learning-heavy drivers are
exercised by the benchmark suite)."""

from __future__ import annotations

import numpy as np

from repro.eval import run_ext_hub_coverage


class TestHubCoverage:
    def test_monotone_coverage(self):
        result = run_ext_hub_coverage()
        measured = result.measured_by_name()
        assert (
            measured["4 array(s)"]
            > measured["2 array(s)"]
            > measured["1 array(s)"]
            > 0.0
        )

    def test_coverage_is_fraction(self):
        result = run_ext_hub_coverage()
        for row in result.rows:
            assert 0.0 <= row.measured <= 1.0

    def test_deterministic(self):
        a = run_ext_hub_coverage().measured_by_name()
        b = run_ext_hub_coverage().measured_by_name()
        assert a == b


class TestExperimentRegistry:
    def test_every_paper_artifact_has_a_driver(self):
        from repro.eval import ALL_EXPERIMENTS

        expected = {
            "fig02", "fig03", "fig09", "table1", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        }
        assert expected <= set(ALL_EXPERIMENTS)

    def test_extensions_registered(self):
        from repro.eval import EXTENSIONS

        assert {
            "ext-transfer",
            "ext-hub",
            "ext-augment",
            "ext-realtime",
            "ext-robustness",
            "ext-batching",
            "ext-resilience",
            "ext-serving",
        } == set(EXTENSIONS)

    def test_drivers_are_callable_with_standard_signature(self):
        import inspect

        from repro.eval import ALL_EXPERIMENTS

        for name, fn in ALL_EXPERIMENTS.items():
            params = inspect.signature(fn).parameters
            assert "quick" in params and "seed" in params, name
