"""Crash-safe training: periodic checkpoints, bit-exact resume."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import ActivityDataset, M2AIConfig, M2AINet, Trainer
from repro.core.serialization import load_training_checkpoint
from repro.dsp.frames import FeatureFrames

# dropout > 0 on purpose: dropout masks draw from the model's own RNG,
# which the checkpoint must capture for the resume to stay bit-exact.
CKPT_CFG = M2AIConfig(
    conv_channels=(3, 4),
    branch_dim=6,
    merge_dim=8,
    lstm_hidden=6,
    lstm_layers=1,
    dropout=0.2,
    epochs=6,
    batch_size=8,
    learning_rate=0.01,
    warmup_frames=1,
    augment=False,
)


def make_data(per_class=6, frames=4, seed=0):
    rng = np.random.default_rng(seed)
    samples, labels = [], []
    for cls in range(3):
        for _ in range(per_class):
            pseudo = rng.normal(0, 0.3, (frames, 2, 40))
            pseudo[:, :, 5 + cls * 12 : 12 + cls * 12] += 2.0
            samples.append(
                FeatureFrames(
                    channels={
                        "pseudo": pseudo,
                        "period": rng.normal(size=(frames, 2, 4)),
                    },
                    label=f"K{cls}",
                )
            )
            labels.append(f"K{cls}")
    ds = ActivityDataset(samples=samples, labels=labels)
    channels, label_names = ds.to_arrays()
    ids = np.array([int(label[1]) for label in label_names])
    return ds.channel_shapes, channels, ids


def run_training(cfg, channels, ids, shapes, **fit_kwargs):
    net = M2AINet(shapes, 3, cfg=cfg)
    trainer = Trainer(net, cfg)
    history = trainer.fit(channels, ids, **fit_kwargs)
    return net, trainer, history


class TestBitExactResume:
    @pytest.mark.parametrize("optimizer", ["sgd", "adam"])
    def test_kill_after_epoch_k_and_resume(self, tmp_path, optimizer):
        # Uninterrupted 6-epoch run vs: 3-epoch run that checkpoints,
        # then a *fresh* model resumed from the checkpoint.  The final
        # parameters must be identical to the last bit.
        cfg = dataclasses.replace(CKPT_CFG, optimizer=optimizer)
        shapes, channels, ids = make_data()
        full_net, _, full_history = run_training(cfg, channels, ids, shapes)

        short_cfg = dataclasses.replace(cfg, epochs=3)
        ckpt = tmp_path / "train.npz"
        _, _, short_history = run_training(
            short_cfg, channels, ids, shapes, checkpoint_path=str(ckpt)
        )
        assert ckpt.exists()

        resumed_net, _, resumed_history = run_training(
            cfg, channels, ids, shapes, resume_from=str(ckpt)
        )
        for a, b in zip(full_net.get_state(), resumed_net.get_state()):
            assert np.array_equal(a, b)
        assert resumed_history.loss == full_history.loss
        assert resumed_history.loss[:3] == short_history.loss

    def test_checkpoint_captures_model_dropout_rngs(self, tmp_path):
        shapes, channels, ids = make_data()
        ckpt = tmp_path / "train.npz"
        cfg = dataclasses.replace(CKPT_CFG, epochs=2)
        run_training(cfg, channels, ids, shapes, checkpoint_path=str(ckpt))
        state = load_training_checkpoint(ckpt)
        assert state["epoch"] == 1
        assert len(state["model_rng_states"]) >= 1
        for rng_state in state["model_rng_states"]:
            assert "bit_generator" in rng_state

    def test_checkpoint_every_controls_cadence(self, tmp_path):
        shapes, channels, ids = make_data()
        ckpt = tmp_path / "train.npz"
        cfg = dataclasses.replace(CKPT_CFG, epochs=5)
        run_training(
            cfg,
            channels,
            ids,
            shapes,
            checkpoint_path=str(ckpt),
            checkpoint_every=3,
        )
        # Epoch 2 (cadence) was overwritten by epoch 4 (final epoch
        # always checkpoints so a resume never loses the tail).
        assert load_training_checkpoint(ckpt)["epoch"] == 4

    def test_invalid_cadence_rejected(self):
        shapes, channels, ids = make_data(per_class=2)
        net = M2AINet(shapes, 3, cfg=CKPT_CFG)
        with pytest.raises(ValueError):
            Trainer(net, CKPT_CFG).fit(channels, ids, checkpoint_every=0)


class TestKeyboardInterrupt:
    def test_interrupt_returns_partial_history(self):
        shapes, channels, ids = make_data()
        net = M2AINet(shapes, 3, cfg=CKPT_CFG)
        trainer = Trainer(net, CKPT_CFG)
        original_step = trainer.optimizer.step
        calls = {"n": 0}

        def interrupting_step():
            calls["n"] += 1
            if calls["n"] == 8:  # mid-epoch 2 (3 batches per epoch)
                raise KeyboardInterrupt
            original_step()

        trainer.optimizer.step = interrupting_step
        history = trainer.fit(channels, ids)  # must not raise
        assert len(history.loss) == 2

    def test_interrupt_restores_best_validation_snapshot(self):
        shapes, channels, ids = make_data()
        net = M2AINet(shapes, 3, cfg=CKPT_CFG)
        trainer = Trainer(net, CKPT_CFG)
        original_step = trainer.optimizer.step
        calls = {"n": 0}

        def interrupting_step():
            calls["n"] += 1
            if calls["n"] == 11:
                raise KeyboardInterrupt
            original_step()

        trainer.optimizer.step = interrupting_step
        history = trainer.fit(channels, ids, channels, ids)
        assert history.val_accuracy, "expected at least one completed epoch"
        assert trainer.accuracy(channels, ids) == pytest.approx(
            max(history.val_accuracy), abs=1e-9
        )

    def test_interrupted_run_resumes_from_its_checkpoint(self, tmp_path):
        shapes, channels, ids = make_data()
        full_net, _, _ = run_training(CKPT_CFG, channels, ids, shapes)

        ckpt = tmp_path / "train.npz"
        net = M2AINet(shapes, 3, cfg=CKPT_CFG)
        trainer = Trainer(net, CKPT_CFG)
        original_step = trainer.optimizer.step
        calls = {"n": 0}

        def interrupting_step():
            calls["n"] += 1
            if calls["n"] == 8:
                raise KeyboardInterrupt
            original_step()

        trainer.optimizer.step = interrupting_step
        trainer.fit(channels, ids, checkpoint_path=str(ckpt))

        # The kill landed mid-epoch 2; the checkpoint holds epoch 1,
        # and a fresh model resumed from it matches the uninterrupted
        # run exactly.
        assert load_training_checkpoint(ckpt)["epoch"] == 1
        resumed_net, _, _ = run_training(
            CKPT_CFG, channels, ids, shapes, resume_from=str(ckpt)
        )
        for a, b in zip(full_net.get_state(), resumed_net.get_state()):
            assert np.array_equal(a, b)
