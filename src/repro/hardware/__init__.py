"""Simulated RFID hardware: tags, antenna array, hopping, reader, LLRP."""

from repro.hardware.antenna import DEFAULT_SPACING_M, DEFAULT_WAVELENGTH_M, UniformLinearArray
from repro.hardware.hopping import REFERENCE_FREQ_MHZ, FrequencyHopper
from repro.hardware.llrp import ReaderMeta, ReadLog, concatenate_logs
from repro.hardware.reader import Reader, ReaderConfig
from repro.hardware.hub import AntennaHub, merge_hub_features
from repro.hardware.scene import Scene, TagTrack, stationary_scene
from repro.hardware.trace_io import dump_csv, load_csv
from repro.hardware.tag import Tag, make_tag

__all__ = [
    "AntennaHub",
    "DEFAULT_SPACING_M",
    "DEFAULT_WAVELENGTH_M",
    "REFERENCE_FREQ_MHZ",
    "FrequencyHopper",
    "Reader",
    "ReaderConfig",
    "ReaderMeta",
    "ReadLog",
    "Scene",
    "Tag",
    "TagTrack",
    "UniformLinearArray",
    "concatenate_logs",
    "dump_csv",
    "load_csv",
    "make_tag",
    "merge_hub_features",
    "stationary_scene",
]
