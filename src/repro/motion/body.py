"""Kinematic body model: from motion signals to tag trajectories.

A person is a torso disc plus three tag attachment points — hand, arm
(forearm) and shoulder, the paper's default placement.  The attachment
model turns the primitive's motion signals into planar tag positions
relative to the torso centre and heading.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.model import BodyTrack
from repro.geometry.vec import Vec2
from repro.motion.primitives import Primitive, Signals

ATTACHMENTS = ("hand", "arm", "shoulder")
"""Tag attachment sites, in the order they are assigned per person."""


@dataclass(frozen=True)
class PersonProfile:
    """Per-volunteer physical variability.

    Attributes:
        torso_radius: torso disc radius, metres.
        reach_scale: arm length multiplier.
        tempo_scale: time-axis multiplier (a slow mover has < 1).
    """

    torso_radius: float = 0.18
    reach_scale: float = 1.0
    tempo_scale: float = 1.0

    @staticmethod
    def random(rng: np.random.Generator) -> "PersonProfile":
        """Draw a volunteer (varying size and movement speed)."""
        return PersonProfile(
            torso_radius=float(rng.uniform(0.15, 0.22)),
            reach_scale=float(rng.uniform(0.85, 1.15)),
            tempo_scale=float(rng.uniform(0.85, 1.2)),
        )


@dataclass
class PersonMotion:
    """One person's sampled movement over the scene window.

    Attributes:
        center: ``(T, 2)`` torso centre.
        orientation: ``(T,)`` heading in radians.
        signals: the raw motion signals.
        profile: the volunteer's physique.
    """

    center: np.ndarray
    orientation: np.ndarray
    signals: Signals
    profile: PersonProfile = field(default_factory=PersonProfile)

    def body_track(self) -> BodyTrack:
        """The torso as a channel-model blocker/scatterer."""
        return BodyTrack(positions=self.center, radius=self.profile.torso_radius)

    def tag_position(self, attachment: str) -> np.ndarray:
        """Trajectory of a tag at one attachment site, ``(T, 2)``.

        The hand rides the extension and lateral signals, the forearm a
        damped version, the shoulder is nearly rigid with the torso —
        so one activity produces three correlated but distinct tag
        trajectories, which is what makes extra tags informative
        (Fig. 15).

        Raises:
            ValueError: for an unknown attachment name.
        """
        cos_o = np.cos(self.orientation)
        sin_o = np.sin(self.orientation)
        unit = np.stack([cos_o, sin_o], axis=1)
        perp = np.stack([-sin_o, cos_o], axis=1)
        reach = self.profile.reach_scale
        s = self.signals
        if attachment == "hand":
            along = (0.30 + 0.35 * s["hand_extend"]) * reach
            lateral = 0.10 * reach + s["hand_lateral"]
        elif attachment == "arm":
            along = (0.22 + 0.20 * s["arm_extend"]) * reach
            lateral = 0.12 * reach + 0.4 * s["hand_lateral"]
        elif attachment == "shoulder":
            along = np.full_like(self.orientation, 0.05)
            lateral = np.full_like(self.orientation, 0.19 * reach)
        else:
            raise ValueError(f"unknown attachment {attachment!r}; valid: {ATTACHMENTS}")
        return self.center + unit * np.asarray(along)[:, None] + perp * np.asarray(lateral)[:, None]


def perform(
    primitive: Primitive,
    anchor: Vec2,
    t: np.ndarray,
    rng: np.random.Generator,
    profile: PersonProfile | None = None,
    facing: float | None = None,
) -> PersonMotion:
    """Execute a primitive at a place in the room.

    Args:
        primitive: the movement to perform.
        anchor: nominal torso position.
        t: time axis in seconds, ``(T,)``.
        rng: randomness for this execution.
        profile: volunteer physique; random when None.
        facing: base heading in radians added to the primitive's
            orientation signal; random when None.

    Returns:
        The sampled :class:`PersonMotion`.
    """
    profile = profile or PersonProfile.random(rng)
    base_heading = rng.uniform(0, 2 * np.pi) if facing is None else facing
    signals = primitive.sample(t * profile.tempo_scale, rng)
    center = np.stack(
        [anchor.x + signals["dx"], anchor.y + signals["dy"]], axis=1
    )
    orientation = signals["orientation"] + base_heading
    return PersonMotion(
        center=center, orientation=orientation, signals=signals, profile=profile
    )
