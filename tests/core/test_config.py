"""M2AIConfig validation and workload presets."""

from __future__ import annotations

import pytest

from repro.core import M2AIConfig
from repro.data import (
    full_generation,
    full_training,
    quick_generation,
    quick_training,
    tiny_generation,
)


class TestM2AIConfig:
    def test_defaults_valid(self):
        cfg = M2AIConfig()
        assert cfg.lstm_hidden == 32  # the paper's 32 memory cells
        assert cfg.lstm_layers == 2  # two stacked LSTM layers

    def test_optimizer_validation(self):
        with pytest.raises(ValueError):
            M2AIConfig(optimizer="lbfgs")

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            M2AIConfig(dropout=1.0)

    def test_epochs_validation(self):
        with pytest.raises(ValueError):
            M2AIConfig(epochs=0)
        with pytest.raises(ValueError):
            M2AIConfig(batch_size=0)

    def test_lstm_layers_validation(self):
        with pytest.raises(ValueError):
            M2AIConfig(lstm_layers=0)

    def test_frozen(self):
        cfg = M2AIConfig()
        with pytest.raises(AttributeError):
            cfg.epochs = 5  # type: ignore[misc]


class TestWorkloadPresets:
    def test_quick_smaller_than_full(self):
        assert quick_generation().samples_per_class < full_generation().samples_per_class
        assert quick_training().epochs <= full_training().epochs

    def test_tiny_is_tiny(self):
        tiny = tiny_generation()
        assert len(tiny.scenario_labels) <= 4
        assert tiny.samples_per_class <= 4

    def test_presets_seedable(self):
        assert quick_generation(seed=5).seed == 5
        assert quick_training(seed=5).seed == 5

    def test_all_presets_cover_every_class_by_default(self):
        assert len(quick_generation().scenario_labels) == 12
        assert len(full_generation().scenario_labels) == 12
