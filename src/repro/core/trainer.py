"""Training loop for the M2AI network.

Implements the paper's recipe (Section VI-A): minibatch stochastic
optimisation of the frame-wise cross entropy (Eq. 17) with global
gradient-norm scaling, tracking test accuracy per epoch and keeping the
best snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.augment import AugmentConfig, augment_batch
from repro.core.config import M2AIConfig
from repro.core.model import M2AINet
from repro.ml.base import LabelEncoder
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.obs.metrics import counter
from repro.obs.tracing import span


@dataclass
class TrainHistory:
    """Per-epoch training curves."""

    loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def best_val_accuracy(self) -> float:
        """Best validation accuracy seen (NaN when no validation ran)."""
        return max(self.val_accuracy) if self.val_accuracy else float("nan")


class Trainer:
    """Fits an :class:`M2AINet` on stacked channel arrays."""

    def __init__(self, model: M2AINet, cfg: M2AIConfig | None = None) -> None:
        self.model = model
        self.cfg = cfg or model.cfg
        self._rng = np.random.default_rng(self.cfg.seed + 1)
        params = model.parameters()
        if self.cfg.optimizer == "adam":
            self.optimizer: SGD | Adam = Adam(
                params, lr=self.cfg.learning_rate, weight_decay=self.cfg.weight_decay
            )
        else:
            self.optimizer = SGD(
                params,
                lr=self.cfg.learning_rate,
                momentum=self.cfg.momentum,
                weight_decay=self.cfg.weight_decay,
            )

    def fit(
        self,
        inputs: dict[str, np.ndarray],
        label_ids: np.ndarray,
        val_inputs: dict[str, np.ndarray] | None = None,
        val_label_ids: np.ndarray | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 1,
        resume_from: str | None = None,
    ) -> TrainHistory:
        """Train for ``cfg.epochs`` epochs, restoring the best snapshot.

        Crash resilience: with ``checkpoint_path`` set, the full
        training state (model parameters, optimizer slots, RNG state,
        history, best-snapshot tracking) is written atomically every
        ``checkpoint_every`` epochs; ``resume_from`` restores such a
        checkpoint and continues the run *bit-exact* — the resumed
        run's final parameters equal the uninterrupted run's.  A
        ``KeyboardInterrupt`` mid-run is caught: the best snapshot
        seen so far is restored (when validation ran) and the partial
        history is returned instead of losing the run.

        Args:
            inputs: ``{channel: (B, T, n, D)}`` training tensors.
            label_ids: ``(B,)`` integer class ids.
            val_inputs: optional held-out tensors for model selection
                (the paper saves the model and computes test accuracy
                each epoch).
            val_label_ids: held-out labels.
            checkpoint_path: where to write periodic epoch
                checkpoints (None disables checkpointing).
            checkpoint_every: checkpoint cadence in epochs.
            resume_from: path of a checkpoint to restore before
                training; the run continues at the epoch after the
                one the checkpoint captured.

        Returns:
            The :class:`TrainHistory` (partial after an interrupt).

        Raises:
            ValueError: on a non-positive ``checkpoint_every``.
            CheckpointError: when ``resume_from`` cannot be read
                (from :mod:`repro.core.serialization`).
        """
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        label_ids = np.asarray(label_ids)
        n = len(label_ids)
        history = TrainHistory()
        best_val = -1.0
        best_state = None
        start_epoch = 0
        if resume_from is not None:
            from repro.core.serialization import load_training_checkpoint

            state = load_training_checkpoint(resume_from)
            self.model.set_state(state["model_state"])
            self.optimizer.set_state(state["optimizer_state"])
            self._rng.bit_generator.state = state["rng_state"]
            history = TrainHistory(**state["history"])
            best_val = state["best_val"]
            best_state = state["best_state"]
            for gen, rng_state in zip(
                self._model_rngs(), state["model_rng_states"]
            ):
                gen.bit_generator.state = rng_state
            start_epoch = state["epoch"] + 1
            counter("train.resumes_total").inc()
        try:
            for _epoch in range(start_epoch, self.cfg.epochs):
                order = self._rng.permutation(n)
                epoch_loss = 0.0
                batches = 0
                with span("train.epoch", epoch=_epoch, samples=n):
                    for start in range(0, n, self.cfg.batch_size):
                        idx = order[start : start + self.cfg.batch_size]
                        batch = {k: v[idx] for k, v in inputs.items()}
                        if self.cfg.augment:
                            batch = augment_batch(batch, self._rng, AugmentConfig())
                        logits = self.model.forward(batch, training=True)
                        frames = logits.shape[1]
                        warmup_start = 0
                        if self.model.mode != "cnn":
                            warmup_start = min(self.cfg.warmup_frames, frames - 1)
                        frame_labels = np.repeat(
                            label_ids[idx][:, None], frames - warmup_start, axis=1
                        )
                        loss, dsliced = softmax_cross_entropy(
                            logits[:, warmup_start:, :], frame_labels
                        )
                        dlogits = np.zeros_like(logits)
                        dlogits[:, warmup_start:, :] = dsliced
                        self.model.zero_grad()
                        self.model.backward(dlogits)
                        clip_grad_norm(self.model.parameters(), self.cfg.clip_norm)
                        self.optimizer.step()
                        epoch_loss += loss
                        batches += 1
                counter("train.batches_total").inc(batches)
                history.loss.append(epoch_loss / max(batches, 1))
                history.train_accuracy.append(self.accuracy(inputs, label_ids))
                if val_inputs is not None and val_label_ids is not None:
                    val_acc = self.accuracy(val_inputs, val_label_ids)
                    history.val_accuracy.append(val_acc)
                    if val_acc > best_val:
                        best_val = val_acc
                        best_state = self.model.get_state()
                if checkpoint_path is not None and (
                    (_epoch + 1) % checkpoint_every == 0
                    or _epoch == self.cfg.epochs - 1
                ):
                    self._write_checkpoint(
                        checkpoint_path, _epoch, history, best_val, best_state
                    )
        except KeyboardInterrupt:
            counter("train.interrupted_total").inc()
        if best_state is not None:
            self.model.set_state(best_state)
        return history

    def _write_checkpoint(
        self,
        path: str,
        epoch: int,
        history: TrainHistory,
        best_val: float,
        best_state: list[np.ndarray] | None,
    ) -> None:
        """Atomically persist the full post-epoch training state."""
        from repro.core.serialization import save_training_checkpoint

        save_training_checkpoint(
            path,
            epoch=epoch,
            model_state=self.model.get_state(),
            optimizer_state=self.optimizer.get_state(),
            rng_state=self._rng.bit_generator.state,
            history={
                "loss": list(history.loss),
                "train_accuracy": list(history.train_accuracy),
                "val_accuracy": list(history.val_accuracy),
            },
            best_val=best_val,
            best_state=best_state,
            model_rng_states=[
                gen.bit_generator.state for gen in self._model_rngs()
            ],
        )
        counter("train.checkpoints_total").inc()

    def _model_rngs(self) -> list[np.random.Generator]:
        """Distinct RNGs the model consumes during training, stable order.

        Dropout layers keep drawing from the generator they were built
        with, so a bit-exact resume must restore those states alongside
        the trainer's own RNG.  Walks the module tree the same way
        ``Module.parameters`` does, deduplicating shared generators.
        """
        from repro.nn.layers import Dropout
        from repro.nn.module import Module

        rngs: list[np.random.Generator] = []
        seen: set[int] = set()
        stack: list[Module] = [self.model]
        while stack:
            module = stack.pop()
            if isinstance(module, Dropout) and id(module.rng) not in seen:
                seen.add(id(module.rng))
                rngs.append(module.rng)
            for _name, attr in sorted(vars(module).items(), reverse=True):
                if isinstance(attr, Module):
                    stack.append(attr)
                elif isinstance(attr, (list, tuple)):
                    stack.extend(a for a in attr if isinstance(a, Module))
        return rngs

    def predict_ids(self, inputs: dict[str, np.ndarray]) -> np.ndarray:
        """Predicted class ids, ``(B,)``."""
        return self.model.predict_logits(inputs).argmax(axis=1)

    def accuracy(self, inputs: dict[str, np.ndarray], label_ids: np.ndarray) -> float:
        """Sample-level accuracy."""
        return float(np.mean(self.predict_ids(inputs) == np.asarray(label_ids)))


__all__ = ["LabelEncoder", "TrainHistory", "Trainer"]
