"""Pipeline save/load round-trips, atomicity, and corruption handling."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import ActivityDataset, M2AIConfig, M2AIPipeline
from repro.core.serialization import (
    CheckpointError,
    load_pipeline,
    load_training_checkpoint,
    save_pipeline,
    save_training_checkpoint,
)
from repro.dsp.frames import FeatureFrames

CFG = M2AIConfig(
    conv_channels=(3, 4),
    branch_dim=6,
    merge_dim=8,
    lstm_hidden=6,
    lstm_layers=1,
    dropout=0.0,
    epochs=8,
    batch_size=8,
    learning_rate=0.01,
    warmup_frames=1,
    augment=False,
)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    samples, labels = [], []
    for cls in range(3):
        for _ in range(8):
            pseudo = rng.normal(0, 0.3, (4, 2, 40))
            pseudo[:, :, 5 + cls * 10 : 12 + cls * 10] += 2.0
            samples.append(
                FeatureFrames(
                    channels={"pseudo": pseudo, "period": rng.normal(size=(4, 2, 4))},
                    label=f"K{cls}",
                )
            )
            labels.append(f"K{cls}")
    ds = ActivityDataset(samples=samples, labels=labels)
    pipeline = M2AIPipeline(CFG).fit(ds)
    return pipeline, ds


class TestRoundTrip:
    def test_predictions_identical(self, fitted, tmp_path):
        pipeline, ds = fitted
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        np.testing.assert_array_equal(restored.predict(ds), pipeline.predict(ds))

    def test_config_and_mode_preserved(self, fitted, tmp_path):
        pipeline, _ds = fitted
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        assert restored.config == pipeline.config
        assert restored.mode == pipeline.mode

    def test_classes_preserved(self, fitted, tmp_path):
        pipeline, _ds = fitted
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        assert restored._encoder.classes_.tolist() == ["K0", "K1", "K2"]

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_pipeline(M2AIPipeline(CFG), tmp_path / "x.npz")

    def test_loaded_pipeline_can_fine_tune(self, fitted, tmp_path):
        pipeline, ds = fitted
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        restored = load_pipeline(path)
        restored.fine_tune(ds, epochs=2)
        result = restored.evaluate(ds)
        assert result.accuracy > 0.8


class TestAtomicity:
    def test_save_leaves_no_temp_files(self, fitted, tmp_path):
        pipeline, _ds = fitted
        save_pipeline(pipeline, tmp_path / "model.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]

    def test_failed_save_preserves_the_old_checkpoint(self, fitted, tmp_path):
        pipeline, ds = fitted
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        before = path.read_bytes()
        # A crash mid-write (here: an array-like that explodes during
        # conversion) must leave the previous complete checkpoint
        # untouched and no debris.
        class Exploding:
            def __array__(self, dtype=None, copy=None):
                raise RuntimeError("disk full")

        from repro.core.serialization import _atomic_savez

        with pytest.raises(RuntimeError, match="disk full"):
            _atomic_savez(path, {"manifest": "x", "param_0000": Exploding()})
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]
        np.testing.assert_array_equal(
            load_pipeline(path).predict(ds), pipeline.predict(ds)
        )


class TestCorruptCheckpoints:
    def test_missing_file_names_the_path(self, tmp_path):
        missing = tmp_path / "nope.npz"
        with pytest.raises(CheckpointError, match="does not exist") as err:
            load_pipeline(missing)
        assert err.value.path == str(missing)

    def test_non_archive_bytes_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(CheckpointError, match="not a readable"):
            load_pipeline(path)

    def test_truncated_archive_rejected(self, fitted, tmp_path):
        pipeline, _ds = fitted
        path = tmp_path / "model.npz"
        save_pipeline(pipeline, path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError):
            load_pipeline(path)

    def test_missing_manifest_is_attributed(self, tmp_path):
        path = tmp_path / "model.npz"
        np.savez(path, param_0000=np.zeros(3))
        with pytest.raises(CheckpointError) as err:
            load_pipeline(path)
        assert err.value.field == "manifest"

    def test_invalid_manifest_json_is_attributed(self, tmp_path):
        path = tmp_path / "model.npz"
        np.savez(path, manifest="{not json")
        with pytest.raises(CheckpointError, match="not valid JSON") as err:
            load_pipeline(path)
        assert err.value.field == "manifest"

    def test_missing_manifest_field_is_attributed(self, tmp_path):
        path = tmp_path / "model.npz"
        np.savez(path, manifest=json.dumps({"format_version": 1}))
        with pytest.raises(CheckpointError) as err:
            load_pipeline(path)
        assert err.value.field == "config"

    def test_version_mismatch_is_attributed(self, tmp_path):
        path = tmp_path / "model.npz"
        np.savez(path, manifest=json.dumps({"format_version": 99}))
        with pytest.raises(CheckpointError, match="unsupported") as err:
            load_pipeline(path)
        assert err.value.field == "format_version"

    def test_checkpoint_error_is_a_value_error(self):
        # Callers catching the historical ValueError keep working.
        assert issubclass(CheckpointError, ValueError)


class TestTrainingCheckpoint:
    def _state(self):
        rng = np.random.default_rng(0)
        return {
            "epoch": 4,
            "model_state": [rng.normal(size=(3, 2)), rng.normal(size=5)],
            "optimizer_state": {
                "lr": 0.01,
                "velocity": [rng.normal(size=(3, 2)), rng.normal(size=5)],
            },
            "rng_state": rng.bit_generator.state,
            "history": {
                "loss": [1.0, 0.5],
                "train_accuracy": [0.5, 0.8],
                "val_accuracy": [],
            },
            "best_val": 0.8,
            "best_state": None,
            "model_rng_states": [np.random.default_rng(7).bit_generator.state],
        }

    def test_round_trip(self, tmp_path):
        path = tmp_path / "train.npz"
        state = self._state()
        save_training_checkpoint(path, **state)
        loaded = load_training_checkpoint(path)
        assert loaded["epoch"] == state["epoch"]
        assert loaded["best_val"] == state["best_val"]
        assert loaded["rng_state"] == state["rng_state"]
        assert loaded["history"] == state["history"]
        assert loaded["best_state"] is None
        assert loaded["model_rng_states"] == state["model_rng_states"]
        for a, b in zip(loaded["model_state"], state["model_state"]):
            assert np.array_equal(a, b)
        for a, b in zip(
            loaded["optimizer_state"]["velocity"],
            state["optimizer_state"]["velocity"],
        ):
            assert np.array_equal(a, b)
        assert loaded["optimizer_state"]["lr"] == 0.01

    def test_legacy_checkpoint_without_model_rngs_loads(self, tmp_path):
        # Checkpoints written before dropout RNG capture lack the
        # field; they must load with an empty list, not crash.
        path = tmp_path / "train.npz"
        state = self._state()
        state.pop("model_rng_states")
        save_training_checkpoint(path, **state)
        with np.load(path, allow_pickle=False) as data:
            manifest = json.loads(str(data["manifest"]))
        manifest.pop("model_rng_states")
        arrays = dict(np.load(path, allow_pickle=False))
        arrays["manifest"] = json.dumps(manifest)
        np.savez(path, **arrays)
        assert load_training_checkpoint(path)["model_rng_states"] == []

    def test_missing_slot_array_is_attributed(self, tmp_path):
        path = tmp_path / "train.npz"
        save_training_checkpoint(path, **self._state())
        arrays = dict(np.load(path, allow_pickle=False))
        del arrays["opt_velocity_0001"]
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError) as err:
            load_training_checkpoint(path)
        assert err.value.field == "opt_velocity_0001"

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "train.npz"
        save_training_checkpoint(path, **self._state())
        arrays = dict(np.load(path, allow_pickle=False))
        manifest = json.loads(str(arrays["manifest"]))
        manifest["format_version"] = 42
        arrays["manifest"] = json.dumps(manifest)
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError) as err:
            load_training_checkpoint(path)
        assert err.value.field == "format_version"


class TestFineTune:
    def test_unfitted_rejected(self, fitted):
        _pipeline, ds = fitted
        with pytest.raises(RuntimeError):
            M2AIPipeline(CFG).fine_tune(ds)

    def test_fine_tune_improves_on_shifted_data(self, fitted):
        pipeline, ds = fitted
        rng = np.random.default_rng(5)
        shifted_samples = []
        for s in ds.samples:
            shifted_samples.append(
                FeatureFrames(
                    channels={
                        k: v + rng.normal(0, 0.8, v.shape) for k, v in s.channels.items()
                    },
                    label=s.label,
                )
            )
        shifted = ActivityDataset(samples=shifted_samples, labels=list(ds.labels))
        before = pipeline.evaluate(shifted).accuracy
        pipeline.fine_tune(shifted, epochs=6)
        after = pipeline.evaluate(shifted).accuracy
        assert after >= before
