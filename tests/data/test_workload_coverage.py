"""Cross-checks between workload presets and experiment drivers."""

from __future__ import annotations

import inspect

from repro.eval import ALL_EXPERIMENTS


class TestDriverHygiene:
    def test_every_driver_returns_experiment_result(self):
        import repro.eval.reporting as reporting

        for name, fn in ALL_EXPERIMENTS.items():
            signature = inspect.signature(fn)
            annotation = signature.return_annotation
            assert annotation in (
                "ExperimentResult",
                reporting.ExperimentResult,
            ), name

    def test_driver_docstrings_cite_their_artifact(self):
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").lower()
            assert doc.strip(), f"{name} driver lacks a docstring"

    def test_benchmark_files_cover_every_driver(self):
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        text = "\n".join(
            p.read_text() for p in bench_dir.glob("bench_*.py")
        )
        for name, fn in ALL_EXPERIMENTS.items():
            assert fn.__name__ in text, f"no benchmark invokes {fn.__name__}"
