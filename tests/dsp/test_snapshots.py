"""Snapshot assembly from read logs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsp import build_snapshots, uncalibrated


class TestBuildSnapshots:
    def test_shapes(self, small_log):
        psi = uncalibrated(small_log)
        snaps = build_snapshots(small_log, psi, 0)
        frames, rounds, n_ant = snaps.z.shape
        assert n_ant == 4
        assert rounds == 4  # 400 ms dwell / (4 x 25 ms) rounds
        assert frames == snaps.n_frames
        assert snaps.wavelength_m.shape == (frames,)

    def test_most_entries_observed(self, small_log):
        psi = uncalibrated(small_log)
        snaps = build_snapshots(small_log, psi, 0)
        assert snaps.valid.mean() > 0.8  # a few misses are expected

    def test_amplitude_and_phase_consistent(self, small_log):
        psi = uncalibrated(small_log)
        snaps = build_snapshots(small_log, psi, 1)
        observed = snaps.z[snaps.valid]
        assert (np.abs(observed) > 0).all()

    def test_forced_frame_count(self, small_log):
        psi = uncalibrated(small_log)
        snaps = build_snapshots(small_log, psi, 0, n_frames=5)
        assert snaps.n_frames == 5

    def test_wavelengths_in_uhf_band(self, small_log):
        psi = uncalibrated(small_log)
        snaps = build_snapshots(small_log, psi, 0)
        assert (snaps.wavelength_m > 0.31).all()
        assert (snaps.wavelength_m < 0.34).all()

    def test_frame_valid_requires_two_antennas(self, small_log):
        psi = uncalibrated(small_log)
        snaps = build_snapshots(small_log, psi, 0)
        for f in range(snaps.n_frames):
            expected = int(snaps.valid[f].any(axis=0).sum()) >= 2
            assert snaps.frame_valid(f) == expected

    def test_misaligned_psi_rejected(self, small_log):
        with pytest.raises(ValueError):
            build_snapshots(small_log, np.zeros(3), 0)

    def test_single_channel_per_frame(self, small_log):
        """Frames are dwell-aligned, so every read in a frame shares
        one carrier — the property that makes MUSIC steering exact."""
        meta = small_log.meta
        # Snap to the dwell grid the same way build_snapshots does.
        t0 = np.floor(small_log.timestamp_s.min() / meta.dwell_s) * meta.dwell_s
        for tag in range(small_log.n_tags):
            sub = small_log.for_tag(tag)
            dwell = np.floor((sub.timestamp_s - t0) / meta.dwell_s).astype(int)
            for d in np.unique(dwell):
                channels = np.unique(sub.channel[dwell == d])
                assert len(channels) == 1
