"""Planar geometry primitives for the indoor propagation model."""

from repro.geometry.room import Room, Scatterer, make_hall, make_laboratory, make_open_space
from repro.geometry.shapes import WALLS, Circle, Rectangle, Segment, deg2rad, rad2deg
from repro.geometry.vec import ORIGIN, Vec2

__all__ = [
    "ORIGIN",
    "WALLS",
    "Circle",
    "Rectangle",
    "Room",
    "Scatterer",
    "Segment",
    "Vec2",
    "deg2rad",
    "make_hall",
    "make_laboratory",
    "make_open_space",
    "rad2deg",
]
