"""Spectrum frames: the learning engine's input tensors (Section IV-A).

A *frame* is one 400 ms dwell reduced to per-tag feature vectors:

* the pseudospectrum frame, ``(n_tags, 180)`` — angle structure;
* the periodogram frame, ``(n_tags, N)`` — power structure.

A sample is the frame sequence over the observation window; stacking
all tags into each frame is what lets the network reason about the
*joint* multi-tag, multi-path state of the room.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.correlation import spatial_covariance_stack
from repro.dsp.music import (
    DEFAULT_ANGLES_DEG,
    masked_pseudospectrum,
    music_spectra_batch,
)
from repro.dsp.periodogram import spatial_periodogram_batch
from repro.dsp.snapshots import (
    TagSnapshots,
    build_snapshots_all,
    build_snapshots_many,
)
from repro.hardware.llrp import ReadLog
from repro.obs.tracing import span
from repro.runtime.breaker import stage_boundary

_DB_FLOOR = -40.0


def normalize_pseudospectrum(spectrum: np.ndarray) -> np.ndarray:
    """Scale-free dB compression of a MUSIC pseudospectrum.

    MUSIC peak heights span orders of magnitude and carry no absolute
    power meaning (that is the periodogram's job), so each spectrum is
    expressed in dB relative to its own peak and clipped at -40 dB,
    then mapped to ``[0, 1]``.  A stacked input normalises each row
    against its own peak.

    Args:
        spectrum: pseudospectrum values over the angle grid, single or
            stacked, shape: ``(..., A)``.

    Returns:
        The compressed spectrum, shape: ``(..., A)`` matching the
        input grid.
    """
    s = np.asarray(spectrum, dtype=np.float64)
    peak = np.maximum(s.max(axis=-1, keepdims=True), 1e-300)
    db = 10.0 * np.log10(np.maximum(s, 1e-300) / peak)
    return np.clip(db, _DB_FLOOR, 0.0) / (-_DB_FLOOR) + 1.0


def power_to_db(power: np.ndarray, floor_db: float = -120.0) -> np.ndarray:
    """Power to decibels with a floor (periodogram frames).

    Args:
        power: non-negative power densities, single spectrum or any
            stacking of them, shape: ``(..., N)``.
        floor_db: lower clamp applied after the log.

    Returns:
        Decibel values, shape: ``(..., N)`` matching the input.
    """
    p = np.asarray(power, dtype=np.float64)
    return np.maximum(10.0 * np.log10(np.maximum(p, 1e-30)), floor_db)


@dataclass
class FeatureFrames:
    """One sample: named feature channels over frames and tags.

    Attributes:
        channels: mapping from channel name (``"pseudo"``,
            ``"period"``, ...) to a ``(F, n_tags, D)`` float array.
        label: the activity class, when known.
    """

    channels: dict[str, np.ndarray]
    label: str | None = None
    meta: dict = field(default_factory=dict)

    @property
    def n_frames(self) -> int:
        """Number of frames."""
        return int(next(iter(self.channels.values())).shape[0])

    @property
    def n_tags(self) -> int:
        """Number of tags."""
        return int(next(iter(self.channels.values())).shape[1])

    def channel_dims(self) -> dict[str, int]:
        """Feature width of each channel (used to size the network)."""
        return {k: int(v.shape[2]) for k, v in self.channels.items()}

    def flatten(self) -> np.ndarray:
        """Whole sample as one flat vector (classical-baseline input)."""
        return np.concatenate(
            [v.reshape(-1) for _, v in sorted(self.channels.items())]
        )


def tag_snapshot_set(
    log: ReadLog, psi: np.ndarray, n_frames: int | None = None
) -> list[TagSnapshots]:
    """Snapshots for every tag over a common frame axis."""
    return build_snapshots_all(log, psi, n_frames=n_frames)


def build_spectrum_frames(
    log: ReadLog,
    psi: np.ndarray,
    n_frames: int | None = None,
    angles_deg: np.ndarray | None = None,
    include_pseudo: bool = True,
    include_period: bool = True,
    label: str | None = None,
) -> FeatureFrames:
    """The M2AI preprocessing output: pseudospectrum + periodogram frames.

    Frames where a tag was not observed on at least two ports repeat
    the tag's previous frame (zero for a missing first frame) — the
    streaming-friendly imputation a real deployment would use.

    Dead antenna ports (no reads anywhere in ``log``) degrade the
    computation instead of poisoning it: the pseudospectrum shrinks to
    the surviving subarray and the periodogram is re-normalised to the
    live aperture.  Feature shapes are unchanged, so a model trained on
    the healthy array still accepts the degraded frames; with every
    port live, the output is identical to the healthy path.

    Args:
        log: session read log.
        psi: doubled phases aligned with the log (calibrated or not).
        n_frames: force the frame count.
        angles_deg: pseudospectrum angle grid (paper default, 180 pts).
        include_pseudo: emit the ``"pseudo"`` channel.
        include_period: emit the ``"period"`` channel.
        label: ground-truth activity class to attach.

    Returns:
        The assembled :class:`FeatureFrames`: channel ``"pseudo"`` has
        shape: ``(F, n_tags, 180)`` and channel ``"period"`` has
        shape: ``(F, n_tags, N)`` for ``N`` antennas;
        ``meta["antenna_liveness"]`` records the port mask the features
        were computed under.
    """
    grid = DEFAULT_ANGLES_DEG if angles_deg is None else np.asarray(angles_deg)
    with span("dsp.frames.build", reads=log.n_reads) as build_span:
        with stage_boundary("dsp.frames"):
            snapshot_sets = tag_snapshot_set(log, psi, n_frames)
            frames = snapshot_sets[0].n_frames
            n_tags = len(snapshot_sets)
            build_span.set(frames=frames, tags=n_tags)
            n_ant = log.meta.n_antennas
            live = log.antenna_liveness()
            healthy = bool(live.all())
            can_aoa = int(live.sum()) >= 2

            pseudo = (
                np.zeros((frames, n_tags, grid.size)) if include_pseudo else None
            )
            period = np.zeros((frames, n_tags, n_ant)) if include_period else None

            _build_tag_frames(
                snapshot_sets, log, grid, live, healthy, can_aoa, pseudo, period
            )

    channels: dict[str, np.ndarray] = {}
    if pseudo is not None:
        channels["pseudo"] = pseudo
    if period is not None:
        channels["period"] = period
    return FeatureFrames(
        channels=channels, label=label, meta={"antenna_liveness": live}
    )


def _collect_entries(
    snapshot_sets: list[TagSnapshots],
) -> tuple[list[tuple[int, int]], list[np.ndarray], list[np.ndarray], list[float]]:
    """Every valid ``(tag, frame)`` dwell with its snapshot rows."""
    frames = snapshot_sets[0].n_frames
    entries: list[tuple[int, int]] = []
    z_rows, valid_rows, wavelengths = [], [], []
    for k, snaps in enumerate(snapshot_sets):
        # Vectorised snaps.frame_valid over the tag's frame axis.
        ok = np.flatnonzero(
            (snaps.valid.any(axis=1).sum(axis=1) >= 2)[:frames]
        )
        entries.extend((k, int(f)) for f in ok)
        z_rows.extend(snaps.z[f] for f in ok)
        valid_rows.extend(snaps.valid[f] for f in ok)
        wavelengths.extend(float(snaps.wavelength_m[f]) for f in ok)
    return entries, z_rows, valid_rows, wavelengths


def _fill_tag_frames(
    snapshot_sets: list[TagSnapshots],
    entries: list[tuple[int, int]],
    spectra: np.ndarray | None,
    powers: np.ndarray | None,
    pseudo: np.ndarray | None,
    period: np.ndarray | None,
) -> None:
    """Scatter per-entry DSP outputs into the frame tensors; invalid
    frames repeat the tag's previous frame (zero for a missing first
    frame)."""
    frames = snapshot_sets[0].n_frames
    position = {entry: i for i, entry in enumerate(entries)}
    for k in range(len(snapshot_sets)):
        for f in range(frames):
            i = position.get((k, f))
            if i is None:
                if f > 0:
                    if pseudo is not None:
                        pseudo[f, k] = pseudo[f - 1, k]
                    if period is not None:
                        period[f, k] = period[f - 1, k]
                continue
            if pseudo is not None and spectra is not None:
                pseudo[f, k] = spectra[i]
            if period is not None and powers is not None:
                period[f, k] = powers[i]


def _build_tag_frames(
    snapshot_sets: list[TagSnapshots],
    log: ReadLog,
    grid: np.ndarray,
    live: np.ndarray,
    healthy: bool,
    can_aoa: bool,
    pseudo: np.ndarray | None,
    period: np.ndarray | None,
) -> None:
    """Fill the per-tag frame tensors in place (split out of the public
    entry point so the span covers exactly the assembly work).

    Every valid ``(tag, frame)`` dwell of the whole sample goes into
    *one* stacked batch — one covariance build, one stacked
    eigendecomposition, one stacked FFT — instead of a Python loop of
    per-frame DSP calls; invalid frames then repeat the previous frame
    exactly as before.
    """
    entries, z_rows, valid_rows, wavelengths = _collect_entries(snapshot_sets)

    spectra: np.ndarray | None = None
    powers: np.ndarray | None = None
    if entries:
        z_stack = np.stack(z_rows)
        v_stack = np.stack(valid_rows)
        if period is not None:
            with stage_boundary("dsp.periodogram"):
                powers = power_to_db(
                    spatial_periodogram_batch(
                        z_stack, v_stack, liveness=None if healthy else live
                    )
                )
        if pseudo is not None and healthy:
            with stage_boundary("dsp.music"):
                covs = spatial_covariance_stack(z_stack, v_stack)
                raw, _dims, _eigs = music_spectra_batch(
                    covs,
                    spacing_m=log.meta.spacing_m,
                    wavelength_m=np.asarray(wavelengths),
                    angles_deg=grid,
                )
                spectra = normalize_pseudospectrum(raw)
        elif pseudo is not None and can_aoa:
            with stage_boundary("dsp.music"):
                spectra = np.stack(
                    [
                        normalize_pseudospectrum(
                            masked_pseudospectrum(
                                z_rows[i],
                                valid_rows[i],
                                live,
                                spacing_m=log.meta.spacing_m,
                                wavelength_m=wavelengths[i],
                                angles_deg=grid,
                            ).spectrum
                        )
                        for i in range(len(entries))
                    ]
                )

    _fill_tag_frames(snapshot_sets, entries, spectra, powers, pseudo, period)


def build_spectrum_frames_many(
    windows: list[tuple[ReadLog, np.ndarray, int | None]],
    angles_deg: np.ndarray | None = None,
    include_pseudo: bool = True,
    include_period: bool = True,
) -> list[FeatureFrames]:
    """Featurise many windows through one pooled DSP batch.

    The cross-stream serving entry point: every valid ``(tag, dwell)``
    of every window — across all streams a fleet shard is ticking —
    goes into *one* stacked periodogram and *one* stacked MUSIC batch,
    so the per-call dispatch cost of the small-matrix DSP kernels is
    paid once per shard tick rather than once per window.  Each
    window's output is identical to :func:`build_spectrum_frames` on
    the same ``(log, psi)``: pooling only widens the stacks, and every
    kernel in them is per-row.

    Windows with a dead antenna port take the scalar masked-subarray
    path (their covariances live on a different element layout), so a
    degraded stream slows only itself down.

    Args:
        windows: ``(log, psi, n_frames)`` per window; ``n_frames``
            None derives the frame count from the log span.
        angles_deg: pseudospectrum angle grid shared by the batch.
        include_pseudo: emit the ``"pseudo"`` channel.
        include_period: emit the ``"period"`` channel.

    Returns:
        One :class:`FeatureFrames` per input window, in order; each
        window's ``"pseudo"`` channel has shape: ``(F, n_tags, 180)``
        and its ``"period"`` channel shape: ``(F, n_tags, N)``.
    """
    grid = DEFAULT_ANGLES_DEG if angles_deg is None else np.asarray(angles_deg)
    out: list[FeatureFrames | None] = [None] * len(windows)
    # Pool per array geometry + frame count (normally exactly one group
    # across the whole fleet): those windows share one binning pass,
    # one covariance/eigen stack and one scatter.
    groups: dict[tuple, list[tuple[int, ReadLog, np.ndarray, np.ndarray]]] = {}
    with span("dsp.frames.build_many", windows=len(windows)):
        for w, (log, psi, n_frames) in enumerate(windows):
            live = log.antenna_liveness()
            if not bool(live.all()):
                # Dead ports take the scalar masked-subarray path (their
                # covariances live on a different element layout), so a
                # degraded stream slows only itself down.
                out[w] = build_spectrum_frames(
                    log,
                    psi,
                    n_frames=n_frames,
                    angles_deg=grid,
                    include_pseudo=include_pseudo,
                    include_period=include_period,
                )
                continue
            meta = log.meta
            if n_frames is None:
                # Mirror build_snapshots_all's span-derived frame count.
                t0 = np.floor(log.timestamp_s.min() / meta.dwell_s) * meta.dwell_s
                span_s = log.timestamp_s.max() - t0
                n_frames = max(1, int(np.ceil((span_s + 1e-9) / meta.dwell_s)))
            key = (
                log.n_tags,
                int(n_frames),
                meta.n_antennas,
                float(meta.dwell_s),
                float(meta.slot_s),
                float(meta.spacing_m),
            )
            groups.setdefault(key, []).append((w, log, psi, live))

        for key, members in groups.items():
            _pool_spectrum_group(
                key, members, grid, include_pseudo, include_period, out
            )
    return out  # type: ignore[return-value]  # every slot is filled above


def _pool_spectrum_group(
    key: tuple,
    members: list[tuple[int, ReadLog, np.ndarray, np.ndarray]],
    grid: np.ndarray,
    include_pseudo: bool,
    include_period: bool,
    out: list[FeatureFrames | None],
) -> None:
    """Featurise one geometry group of healthy windows as a single batch.

    One :func:`build_snapshots_many` binning pass, one stacked
    periodogram/MUSIC call over every valid ``(window, tag, dwell)``
    entry in the group, then a vectorised scatter + forward fill that
    replicates :func:`_fill_tag_frames` per window.
    """
    n_tags, frames, n_ant, _dwell, _slot, spacing = key
    with stage_boundary("dsp.frames"):
        z, valid, wavelength, _frame_time = build_snapshots_many(
            [log for _w, log, _psi, _live in members],
            [psi for _w, _log, psi, _live in members],
            frames,
        )
        # A (window, tag, dwell) joins the batch when it saw >= 2 ports
        # — exactly TagSnapshots.frame_valid.
        ok = valid.any(axis=3).sum(axis=3) >= 2  # (W, T, F)
        w_e, t_e, f_e = np.nonzero(ok)
        z_rows = z[w_e, t_e, f_e]
        v_rows = valid[w_e, t_e, f_e]
        wavelengths = wavelength[w_e, t_e, f_e]

    powers = spectra = None
    if w_e.size:
        if include_period:
            with stage_boundary("dsp.periodogram"):
                powers = power_to_db(spatial_periodogram_batch(z_rows, v_rows))
        if include_pseudo:
            with stage_boundary("dsp.music"):
                covs = spatial_covariance_stack(z_rows, v_rows)
                raw, _dims, _eigs = music_spectra_batch(
                    covs,
                    spacing_m=spacing,
                    wavelength_m=wavelengths,
                    angles_deg=grid,
                )
                spectra = normalize_pseudospectrum(raw)

    n_windows = len(members)
    pseudo = (
        np.zeros((n_windows, frames, n_tags, grid.size))
        if include_pseudo
        else None
    )
    period = (
        np.zeros((n_windows, frames, n_tags, n_ant)) if include_period else None
    )
    if pseudo is not None and spectra is not None:
        pseudo[w_e, f_e, t_e] = spectra
    if period is not None and powers is not None:
        period[w_e, f_e, t_e] = powers
    # Invalid frames repeat the tag's previous frame (zero for a
    # missing first frame) — _fill_tag_frames, vectorised over the
    # whole group.
    have = ok.transpose(0, 2, 1)  # (W, F, T)
    for f in range(1, frames):
        miss = ~have[:, f]
        if miss.any():
            if pseudo is not None:
                pseudo[:, f][miss] = pseudo[:, f - 1][miss]
            if period is not None:
                period[:, f][miss] = period[:, f - 1][miss]

    for i, (w, _log, _psi, live) in enumerate(members):
        channels: dict[str, np.ndarray] = {}
        if pseudo is not None:
            channels["pseudo"] = pseudo[i]
        if period is not None:
            channels["period"] = period[i]
        out[w] = FeatureFrames(
            channels=channels, meta={"antenna_liveness": live}
        )
