"""Vectorised geometry kernels for the propagation inner loop.

The channel model evaluates thousands of (path-leg, blocker, time-step)
combinations per simulated sample.  These helpers operate on whole time
axes at once so the simulator stays in numpy.

Shapes follow one convention: a trajectory is an ``(T, 2)`` float array
of planar positions over ``T`` time steps; a static point may be passed
as a plain ``(2,)`` array and broadcasts.
"""

from __future__ import annotations

import numpy as np


def as_traj(p: np.ndarray, steps: int) -> np.ndarray:
    """Broadcast a point or trajectory to shape ``(steps, 2)``.

    Args:
        p: either a static ``(2,)`` point or a ``(steps, 2)`` trajectory.
        steps: the required number of time steps.

    Returns:
        A ``(steps, 2)`` view or tiled array.

    Raises:
        ValueError: when the input shape is incompatible.
    """
    arr = np.asarray(p, dtype=np.float64)
    if arr.shape == (2,):
        return np.broadcast_to(arr, (steps, 2))
    if arr.shape == (steps, 2):
        return arr
    raise ValueError(f"expected (2,) or ({steps}, 2), got {arr.shape}")


def pairwise_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-timestep Euclidean distance between two trajectories.

    Args:
        a: ``(T, 2)`` trajectory (or ``(2,)`` static point).
        b: ``(T, 2)`` trajectory (or ``(2,)`` static point).

    Returns:
        ``(T,)`` distances.
    """
    steps = max(np.atleast_2d(a).shape[0], np.atleast_2d(b).shape[0])
    if np.asarray(a).ndim == 1 and np.asarray(b).ndim == 1:
        steps = 1
    ta, tb = as_traj(a, steps), as_traj(b, steps)
    return np.linalg.norm(ta - tb, axis=1)


def segment_point_distance(
    a: np.ndarray, b: np.ndarray, p: np.ndarray
) -> np.ndarray:
    """Distance from point trajectory ``p`` to segment ``a(t)--b(t)``.

    All three arguments broadcast between static ``(2,)`` points and
    ``(T, 2)`` trajectories.  Used for blockage tests: a path leg is
    blocked at time ``t`` when this distance drops below the blocker
    radius.

    Returns:
        ``(T,)`` shortest distances.
    """
    steps = max(
        np.atleast_2d(np.asarray(a)).shape[0],
        np.atleast_2d(np.asarray(b)).shape[0],
        np.atleast_2d(np.asarray(p)).shape[0],
    )
    ta, tb, tp = as_traj(a, steps), as_traj(b, steps), as_traj(p, steps)
    d = tb - ta
    len_sq = np.einsum("ij,ij->i", d, d)
    diff = tp - ta
    # Parameter of the closest point, clamped to the segment.
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(len_sq > 0.0, np.einsum("ij,ij->i", diff, d) / len_sq, 0.0)
    t = np.clip(t, 0.0, 1.0)
    closest = ta + t[:, None] * d
    return np.linalg.norm(tp - closest, axis=1)


def crossing_mask(
    a: np.ndarray,
    b: np.ndarray,
    blocker: np.ndarray,
    radius: float,
    *,
    endpoint_margin: float = 1e-6,
) -> np.ndarray:
    """Boolean mask of time steps where the leg ``a--b`` crosses a disc.

    A leg whose *endpoint* sits at the blocker centre (e.g. the path
    terminates at the body that carries the tag) is not counted as
    blocked by that body: blockage needs the disc strictly between the
    endpoints.

    Args:
        a: leg start, ``(2,)`` or ``(T, 2)``.
        b: leg end, ``(2,)`` or ``(T, 2)``.
        blocker: disc centre, ``(2,)`` or ``(T, 2)``.
        radius: disc radius in metres.
        endpoint_margin: tolerance for endpoint coincidence.

    Returns:
        ``(T,)`` boolean array, True where blocked.
    """
    steps = max(
        np.atleast_2d(np.asarray(a)).shape[0],
        np.atleast_2d(np.asarray(b)).shape[0],
        np.atleast_2d(np.asarray(blocker)).shape[0],
    )
    ta, tb, tc = as_traj(a, steps), as_traj(b, steps), as_traj(blocker, steps)
    near = segment_point_distance(ta, tb, tc) <= radius
    at_start = np.linalg.norm(ta - tc, axis=1) <= radius + endpoint_margin
    at_end = np.linalg.norm(tb - tc, axis=1) <= radius + endpoint_margin
    return near & ~at_start & ~at_end
