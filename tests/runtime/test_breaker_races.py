"""Concurrency and property tests for the circuit breaker.

The half-open state admits exactly ONE probe; a race between threads
arriving just after the reset timeout must not let two probes through
(two probes double-hit a struggling stage and can double-transition
the breaker).  The hypothesis test drives the full
closed → open → half-open → {closed, open} cycle with seeded random
failures and checks the state machine's invariants at every step.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    CircuitOpenError,
)

from .conftest import FakeClock


def _opened_breaker(clock: FakeClock, threshold: int = 3) -> CircuitBreaker:
    breaker = CircuitBreaker(
        "stage", failure_threshold=threshold, reset_timeout_s=10.0, clock=clock
    )
    for _ in range(threshold):
        breaker.record_failure()
    assert breaker.state == STATE_OPEN
    return breaker


def test_racing_probes_admit_exactly_one():
    clock = FakeClock(t=0.0)
    breaker = _opened_breaker(clock)
    clock.t = 11.0  # past the reset timeout: next call may probe

    n_threads = 8
    admitted: list[int] = []
    rejected: list[int] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_threads)

    def worker(i: int) -> None:
        barrier.wait()
        try:
            breaker.before_call()
        except CircuitOpenError:
            with lock:
                rejected.append(i)
        else:
            with lock:
                admitted.append(i)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(admitted) == 1, (admitted, rejected)
    assert len(rejected) == n_threads - 1
    assert breaker.state == STATE_HALF_OPEN


def test_second_probe_allowed_after_first_resolves():
    clock = FakeClock(t=0.0)
    breaker = _opened_breaker(clock)
    clock.t = 11.0
    breaker.before_call()  # probe admitted
    breaker.record_failure()  # probe fails -> re-open
    assert breaker.state == STATE_OPEN
    clock.t = 22.0
    breaker.before_call()  # a fresh probe after another full timeout
    breaker.record_success()
    assert breaker.state == STATE_CLOSED


def test_racing_probes_after_failed_probe_still_admit_one():
    clock = FakeClock(t=0.0)
    breaker = _opened_breaker(clock)
    clock.t = 11.0
    breaker.before_call()
    breaker.record_failure()
    clock.t = 22.0

    n_threads = 6
    outcomes: list[bool] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_threads)

    def worker() -> None:
        barrier.wait()
        try:
            breaker.before_call()
            ok = True
        except CircuitOpenError:
            ok = False
        with lock:
            outcomes.append(ok)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert outcomes.count(True) == 1


_LEGAL_EDGES = {
    (STATE_CLOSED, STATE_OPEN),
    (STATE_OPEN, STATE_HALF_OPEN),
    (STATE_HALF_OPEN, STATE_CLOSED),
    (STATE_HALF_OPEN, STATE_OPEN),
    (STATE_OPEN, STATE_CLOSED),  # operator reset() only
}


@settings(max_examples=200, deadline=None)
@given(
    threshold=st.integers(min_value=1, max_value=4),
    outcomes=st.lists(st.booleans(), min_size=1, max_size=60),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_cycle_invariants_under_random_failures(threshold, outcomes, seed):
    """The breaker walks only legal edges under any failure pattern.

    A reference model tracks what the state must be after every
    attempted call; clock advances are derived from the seeded
    outcome stream so the open->half-open edge is exercised too.
    """
    clock = FakeClock(t=0.0)
    breaker = CircuitBreaker(
        "stage", failure_threshold=threshold, reset_timeout_s=5.0, clock=clock
    )
    consecutive = 0
    for i, success in enumerate(outcomes):
        # Deterministically interleave waits so some attempts land
        # before the reset timeout (rejected) and some after (probe).
        wait_long = (seed >> (i % 16)) & 1
        clock.t += 6.0 if wait_long else 1.0

        state_before = breaker.state
        try:
            breaker.before_call()
        except CircuitOpenError:
            # Rejections only happen while open, before the timeout.
            assert state_before == STATE_OPEN
            assert breaker.state == STATE_OPEN
            continue
        if success:
            breaker.record_success()
            assert breaker.state == STATE_CLOSED
            consecutive = 0
        else:
            breaker.record_failure()
            consecutive += 1
            if state_before in (STATE_OPEN, STATE_HALF_OPEN):
                # A failed probe must re-open immediately.
                assert breaker.state == STATE_OPEN
                consecutive = 0
            elif consecutive >= threshold:
                assert breaker.state == STATE_OPEN
                consecutive = 0
            else:
                assert breaker.state == STATE_CLOSED

    for edge in breaker.transitions:
        assert edge in _LEGAL_EDGES, breaker.transitions
