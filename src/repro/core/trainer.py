"""Training loop for the M2AI network.

Implements the paper's recipe (Section VI-A): minibatch stochastic
optimisation of the frame-wise cross entropy (Eq. 17) with global
gradient-norm scaling, tracking test accuracy per epoch and keeping the
best snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.augment import AugmentConfig, augment_batch
from repro.core.config import M2AIConfig
from repro.core.model import M2AINet
from repro.ml.base import LabelEncoder
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.obs.metrics import counter
from repro.obs.tracing import span


@dataclass
class TrainHistory:
    """Per-epoch training curves."""

    loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def best_val_accuracy(self) -> float:
        """Best validation accuracy seen (NaN when no validation ran)."""
        return max(self.val_accuracy) if self.val_accuracy else float("nan")


class Trainer:
    """Fits an :class:`M2AINet` on stacked channel arrays."""

    def __init__(self, model: M2AINet, cfg: M2AIConfig | None = None) -> None:
        self.model = model
        self.cfg = cfg or model.cfg
        self._rng = np.random.default_rng(self.cfg.seed + 1)
        params = model.parameters()
        if self.cfg.optimizer == "adam":
            self.optimizer: SGD | Adam = Adam(
                params, lr=self.cfg.learning_rate, weight_decay=self.cfg.weight_decay
            )
        else:
            self.optimizer = SGD(
                params,
                lr=self.cfg.learning_rate,
                momentum=self.cfg.momentum,
                weight_decay=self.cfg.weight_decay,
            )

    def fit(
        self,
        inputs: dict[str, np.ndarray],
        label_ids: np.ndarray,
        val_inputs: dict[str, np.ndarray] | None = None,
        val_label_ids: np.ndarray | None = None,
    ) -> TrainHistory:
        """Train for ``cfg.epochs`` epochs, restoring the best snapshot.

        Args:
            inputs: ``{channel: (B, T, n, D)}`` training tensors.
            label_ids: ``(B,)`` integer class ids.
            val_inputs: optional held-out tensors for model selection
                (the paper saves the model and computes test accuracy
                each epoch).
            val_label_ids: held-out labels.

        Returns:
            The :class:`TrainHistory`.
        """
        label_ids = np.asarray(label_ids)
        n = len(label_ids)
        history = TrainHistory()
        best_val = -1.0
        best_state = None
        for _epoch in range(self.cfg.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            with span("train.epoch", epoch=_epoch, samples=n):
                for start in range(0, n, self.cfg.batch_size):
                    idx = order[start : start + self.cfg.batch_size]
                    batch = {k: v[idx] for k, v in inputs.items()}
                    if self.cfg.augment:
                        batch = augment_batch(batch, self._rng, AugmentConfig())
                    logits = self.model.forward(batch, training=True)
                    frames = logits.shape[1]
                    warmup_start = 0
                    if self.model.mode != "cnn":
                        warmup_start = min(self.cfg.warmup_frames, frames - 1)
                    frame_labels = np.repeat(
                        label_ids[idx][:, None], frames - warmup_start, axis=1
                    )
                    loss, dsliced = softmax_cross_entropy(
                        logits[:, warmup_start:, :], frame_labels
                    )
                    dlogits = np.zeros_like(logits)
                    dlogits[:, warmup_start:, :] = dsliced
                    self.model.zero_grad()
                    self.model.backward(dlogits)
                    clip_grad_norm(self.model.parameters(), self.cfg.clip_norm)
                    self.optimizer.step()
                    epoch_loss += loss
                    batches += 1
            counter("train.batches_total").inc(batches)
            history.loss.append(epoch_loss / max(batches, 1))
            history.train_accuracy.append(self.accuracy(inputs, label_ids))
            if val_inputs is not None and val_label_ids is not None:
                val_acc = self.accuracy(val_inputs, val_label_ids)
                history.val_accuracy.append(val_acc)
                if val_acc > best_val:
                    best_val = val_acc
                    best_state = self.model.get_state()
        if best_state is not None:
            self.model.set_state(best_state)
        return history

    def predict_ids(self, inputs: dict[str, np.ndarray]) -> np.ndarray:
        """Predicted class ids, ``(B,)``."""
        return self.model.predict_logits(inputs).argmax(axis=1)

    def accuracy(self, inputs: dict[str, np.ndarray], label_ids: np.ndarray) -> float:
        """Sample-level accuracy."""
        return float(np.mean(self.predict_ids(inputs) == np.asarray(label_ids)))


__all__ = ["LabelEncoder", "TrainHistory", "Trainer"]
