"""StandardScaler and PCA."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml import PCA, StandardScaler

RNG = np.random.default_rng(0)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        x = RNG.normal(3.0, 5.0, (100, 4))
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_not_divided(self):
        x = np.ones((10, 2))
        x[:, 1] = RNG.normal(size=10)
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z[:, 0], 0.0)
        assert np.isfinite(z).all()

    def test_inverse_roundtrip(self):
        x = RNG.normal(size=(20, 3))
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_train_statistics_applied_to_test(self):
        train = RNG.normal(10.0, 1.0, (50, 2))
        scaler = StandardScaler().fit(train)
        test = np.full((5, 2), 10.0)
        np.testing.assert_allclose(scaler.transform(test), 0.0, atol=0.5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))


class TestPCA:
    def test_recovers_dominant_direction(self):
        direction = np.array([3.0, 4.0]) / 5.0
        t = RNG.normal(size=(200, 1))
        x = t * direction + RNG.normal(0, 0.01, (200, 2))
        pca = PCA(1).fit(x)
        component = pca.components_[0]
        assert abs(component @ direction) == pytest.approx(1.0, abs=1e-3)

    def test_explained_variance_sorted(self):
        x = RNG.normal(size=(100, 5)) * np.array([5.0, 3.0, 1.0, 0.5, 0.1])
        pca = PCA(5).fit(x)
        ev = pca.explained_variance_
        assert (np.diff(ev) <= 1e-9).all()

    def test_transform_shape(self):
        x = RNG.normal(size=(30, 8))
        z = PCA(3).fit_transform(x)
        assert z.shape == (30, 3)

    def test_components_capped(self):
        x = RNG.normal(size=(5, 3))
        pca = PCA(10).fit(x)
        assert pca.components_.shape[0] <= 3

    def test_reconstruction_improves_with_components(self):
        x = RNG.normal(size=(60, 6)) @ RNG.normal(size=(6, 6))

        def err(k):
            pca = PCA(k).fit(x)
            back = pca.inverse_transform(pca.transform(x))
            return float(np.linalg.norm(x - back))

        assert err(5) <= err(2) <= err(1)

    @given(st.integers(min_value=1, max_value=4))
    def test_orthonormal_components(self, k):
        x = np.random.default_rng(k).normal(size=(40, 6))
        pca = PCA(k).fit(x)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(pca.components_.shape[0]), atol=1e-9)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.zeros((2, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            PCA(0)
