"""Fig. 11: accuracy vs the number of simultaneously acting people."""

from repro.eval import run_fig11


def test_fig11_number_of_objects(run_experiment):
    result = run_experiment(run_fig11)
    measured = result.measured_by_name()
    # Shape check: one person is no harder than three.
    assert measured["1 object(s)"] >= measured["3 object(s)"] - 0.1
