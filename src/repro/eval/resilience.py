"""Resilience evaluation: the fault sweep served through the supervisor.

PR 1 measured what injected faults do to *accuracy* through the bare
:class:`~repro.core.streaming.StreamingIdentifier`
(:mod:`repro.eval.robustness`); this driver replays the same severity
sweep through the :class:`~repro.runtime.supervisor.PipelineSupervisor`
and measures what the *runtime* does with those faults: recovered
throughput, abstain and dead-letter rates, shed windows, and breaker
behaviour — plus two focused studies:

* a **transport study**: a FlakyReader-style ingest transport that
  drops fetches with probability equal to the sweep's highest severity
  (0.9), recovered through seeded full-jitter retries;
* a **breaker-cycle study**: an induced inference fault drives the
  ``predict`` breaker through a full closed → open → half-open →
  closed cycle on an injected fake clock (no sleeping), with the
  transitions recorded in the metrics registry.

Run as a module to produce the benchmark artifact::

    PYTHONPATH=src python -m repro.eval.resilience --quick

which writes ``BENCH_ext_resilience.json``.  The contract asserted by
the artifact: the *entire* sweep completes with zero uncaught
exceptions — every failed window degrades to an abstain decision and
a dead letter.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.streaming import StreamingIdentifier, split_windows
from repro.dsp.calibration import PhaseCalibrator
from repro.eval.reporting import ExperimentResult, ExperimentRow
from repro.eval.robustness import (
    DEFAULT_FAULT_KINDS,
    DEFAULT_SEVERITIES,
    _clean_calibrator,
)
from repro.faults import FaultSpec, apply_faults
from repro.runtime import (
    PipelineSupervisor,
    RetryExhaustedError,
    RetryPolicy,
    call_with_retry,
)

TRANSPORT_SEVERITY = 0.9
"""Ingest-transport failure probability of the transport study (the
sweep's highest severity)."""


@dataclass(frozen=True)
class ResilienceCell:
    """Supervised serving under one (fault kind, severity) setting.

    Attributes:
        kind: fault kind swept.
        severity: fault severity in ``[0, 1]``.
        n_windows: decisions emitted (exactly one per window).
        decided: labelled (non-abstain) decisions.
        abstained: abstain decisions (graceful degradations included).
        dead_letters: windows dead-lettered by the supervisor.
        shed: windows dropped by backpressure.
        uncaught: exceptions that escaped the supervisor (must be 0).
        accuracy: accuracy over decided windows (NaN when none).
        elapsed_s: wall-clock for the cell's serving pass.
        throughput_w_per_s: windows served per second of wall-clock.
    """

    kind: str
    severity: float
    n_windows: int
    decided: int
    abstained: int
    dead_letters: int
    shed: int
    uncaught: int
    accuracy: float
    elapsed_s: float
    throughput_w_per_s: float


def supervised_serve(
    identifier: StreamingIdentifier,
    raw_samples: list,
    kind: str,
    severity: float,
    seed: int = 0,
) -> ResilienceCell:
    """Serve fault-injected recordings through a fresh supervisor.

    Mirrors the corruption protocol of
    :func:`repro.eval.robustness.robustness_sweep` (per-sample seeds,
    ``calibration_gap`` corrupting the bootstrap log) but drives every
    window through a :class:`PipelineSupervisor`, so stage failures
    degrade to abstains/dead letters instead of raising.

    Returns:
        The cell's :class:`ResilienceCell` tallies.
    """
    supervisor = PipelineSupervisor(identifier)
    spec = FaultSpec(kind=kind, severity=severity)
    correct = decided = abstained = total = uncaught = 0
    t0 = time.perf_counter()
    for i, raw in enumerate(raw_samples):
        sample_seed = seed * 100_003 + i
        if kind == "calibration_gap" and severity > 0.0:
            cal_log = apply_faults(raw.calibration_log, [spec], seed=sample_seed)
            log = raw.log
            try:
                calibrator = PhaseCalibrator.fit(cal_log)
            except ValueError:  # bootstrap wiped out entirely
                calibrator = None
        else:
            log = apply_faults(raw.log, [spec], seed=sample_seed)
            calibrator = _clean_calibrator(raw)
        identifier.calibrator = calibrator
        try:
            decisions = supervisor.process(log)
        except Exception:  # the supervisor contract says: never
            uncaught += 1
            continue
        if not decisions:
            # Log too degraded to hold one complete window: count the
            # recording as an abstention, matching the robustness sweep.
            abstained += 1
            total += 1
            continue
        for decision in decisions:
            total += 1
            if decision.abstained:
                abstained += 1
            else:
                decided += 1
                correct += int(decision.label == raw.label)
    elapsed = time.perf_counter() - t0
    health = supervisor.health()
    return ResilienceCell(
        kind=kind,
        severity=severity,
        n_windows=total,
        decided=decided,
        abstained=abstained,
        dead_letters=health.windows_failed,
        shed=health.shed_windows,
        uncaught=uncaught,
        accuracy=correct / decided if decided else float("nan"),
        elapsed_s=elapsed,
        throughput_w_per_s=total / max(elapsed, 1e-9),
    )


def resilience_sweep(
    identifier: StreamingIdentifier,
    raw_samples: list,
    kinds: tuple[str, ...] = DEFAULT_FAULT_KINDS,
    severities: tuple[float, ...] = DEFAULT_SEVERITIES,
    seed: int = 0,
) -> list[ResilienceCell]:
    """The full PR 1 fault sweep, served through the supervisor.

    Severity zero reuses one shared clean pass (the injectors are
    exact no-ops there), matching the robustness sweep's protocol.

    Returns:
        One :class:`ResilienceCell` per (kind, severity).
    """
    cells: list[ResilienceCell] = []
    clean: ResilienceCell | None = None
    for kind in kinds:
        for severity in severities:
            if severity == 0.0:
                if clean is None:
                    clean = supervised_serve(
                        identifier, raw_samples, kind, 0.0, seed
                    )
                cells.append(
                    ResilienceCell(**{**asdict(clean), "kind": kind})
                )
                continue
            cells.append(
                supervised_serve(identifier, raw_samples, kind, severity, seed)
            )
    return cells


class _FlakyInference:
    """``predict_proba`` facade failing its first N calls (breaker study)."""

    def __init__(self, pipeline, fail_calls: int) -> None:
        self._pipeline = pipeline
        self._fails_left = int(fail_calls)

    @property
    def model(self):
        return self._pipeline.model

    @property
    def classes(self):
        return self._pipeline.classes

    def predict_proba(self, dataset):
        if self._fails_left > 0:
            self._fails_left -= 1
            raise RuntimeError("induced inference fault (resilience bench)")
        return self._pipeline.predict_proba(dataset)


class _FakeClock:
    """Manually advanced monotonic clock for deterministic breaker timing."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


def transport_study(
    identifier: StreamingIdentifier,
    windows: list[tuple[float, object]],
    severity: float = TRANSPORT_SEVERITY,
    seed: int = 0,
) -> dict:
    """FlakyReader-style ingest at the sweep's highest severity.

    Each window fetch fails with probability ``severity`` per attempt
    (seeded), recovered via :func:`repro.runtime.retry.call_with_retry`
    under a zero-delay policy; recovered windows are served through a
    supervisor.  Nothing here may raise — exhausted fetches count as
    lost ingest windows, not errors.

    Returns:
        The ``"transport"`` section of the benchmark document.
    """
    policy = RetryPolicy(
        max_attempts=10,
        base_delay_s=0.0,
        max_delay_s=0.0,
        retry_on=(ConnectionError,),
        jitter_seed=seed,
    )
    fail_rng = np.random.default_rng(seed + 17)
    supervisor = PipelineSupervisor(identifier)
    attempts = delivered = lost = uncaught = 0
    t0 = time.perf_counter()
    for t_start, window_log in windows:

        def fetch(log=window_log):
            nonlocal attempts
            attempts += 1
            if fail_rng.random() < severity:
                raise ConnectionError("simulated LLRP transport drop")
            return log

        try:
            fetched = call_with_retry(
                fetch, policy=policy, stage="bench.transport"
            )
        except RetryExhaustedError:
            lost += 1
            continue
        delivered += 1
        supervisor.submit(fetched, t_start)
    try:
        decisions = supervisor.drain()
    except Exception:  # the supervisor contract says: never
        decisions = []
        uncaught += 1
    elapsed = time.perf_counter() - t0
    decided = sum(1 for d in decisions if not d.abstained)
    return {
        "severity": float(severity),
        "windows_offered": len(windows),
        "fetch_attempts": attempts,
        "windows_delivered": delivered,
        "windows_lost_to_transport": lost,
        "windows_decided": decided,
        "windows_abstained": len(decisions) - decided,
        "uncaught_exceptions": uncaught,
        "retry_policy": {
            "max_attempts": policy.max_attempts,
            "base_delay_s": policy.base_delay_s,
            "jitter_seed": policy.jitter_seed,
        },
        "elapsed_s": elapsed,
        "recovered_throughput_w_per_s": decided / max(elapsed, 1e-9),
    }


def breaker_cycle_study(
    identifier: StreamingIdentifier, window: tuple[float, object]
) -> dict:
    """Drive the ``predict`` breaker through a full recovery cycle.

    An induced inference fault fails the first two windows (opening
    the breaker at ``failure_threshold=2``), two more windows are
    rejected while open, then a fake-clock jump past the reset timeout
    lets a half-open probe through — which succeeds and closes the
    breaker.  The observed transition list must contain the full
    closed → open → half-open → closed cycle.

    Returns:
        The ``"breaker_cycle"`` section of the benchmark document.
    """
    t_start, window_log = window
    flaky = StreamingIdentifier(
        pipeline=_FlakyInference(identifier.pipeline, fail_calls=2),
        calibrator=identifier.calibrator,
        window_s=identifier.window_s,
        min_reads=identifier.min_reads,
        min_live_ports=identifier.min_live_ports,
    )
    clock = _FakeClock()
    supervisor = PipelineSupervisor(
        flaky, failure_threshold=2, reset_timeout_s=5.0, clock=clock.now
    )
    reasons: list[str | None] = []
    states: list[str] = []
    for _step in range(4):
        supervisor.submit(window_log, t_start)
        for decision in supervisor.drain():
            reasons.append(decision.reason)
        states.append(supervisor.breakers["predict"].state)
        clock.t += 1.0
    clock.t += 10.0  # past reset_timeout_s: next call is the probe
    supervisor.submit(window_log, t_start)
    probe_decisions = supervisor.drain()
    reasons.extend(d.reason for d in probe_decisions)
    states.append(supervisor.breakers["predict"].state)
    transitions = list(supervisor.breakers["predict"].transitions)
    return {
        "transitions": [list(t) for t in transitions],
        "full_cycle_observed": (
            ("closed", "open") in transitions
            and ("open", "half_open") in transitions
            and ("half_open", "closed") in transitions
        ),
        "window_reasons": reasons,
        "breaker_state_after_each_step": states,
        "probe_decision_labelled": bool(
            probe_decisions and not probe_decisions[-1].abstained
        ),
        "health_after": supervisor.health().as_dict(),
    }


def run_resilience_bench(quick: bool = True, seed: int = 0) -> dict:
    """Build the workload and produce the full benchmark document.

    Trains the same compact 4-class pipeline as the robustness driver,
    then runs the supervised fault sweep, the transport study, and the
    breaker-cycle study with observability enabled, and assembles the
    ``BENCH_ext_resilience.json`` content (including the metrics
    registry snapshot as evidence of breaker transitions and retry
    counts).

    Raises:
        RuntimeError: when the sweep saw an uncaught exception or the
            breaker cycle did not complete — the artifact must not be
            written from a run that violated the supervision contract.
    """
    import os

    from repro import obs
    from repro.core.config import M2AIConfig
    from repro.core.pipeline import M2AIPipeline
    from repro.data.generator import GenerationConfig, SyntheticDatasetGenerator
    from repro.eval.harness import get_raw_samples

    cfg = GenerationConfig(
        scenario_labels=("A01", "A03", "A07", "A11"),
        samples_per_class=6 if quick else 12,
        duration_s=6.0,
        calibration_s=20.0,
        seed=seed,
    )
    raw = get_raw_samples(cfg)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(raw))
    n_test = max(4, int(0.25 * len(raw)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    generator = SyntheticDatasetGenerator(cfg)
    train_ds = generator.featurize([raw[i] for i in train_idx])

    epochs = 25 if quick else 45
    override = os.environ.get("REPRO_BENCH_EPOCHS")
    if override:
        epochs = min(epochs, int(override))
    t_setup = time.perf_counter()
    pipeline = M2AIPipeline(M2AIConfig(epochs=epochs, batch_size=8, seed=seed))
    pipeline.fit(train_ds)
    setup_s = time.perf_counter() - t_setup

    dwell = raw[0].log.meta.dwell_s
    identifier = StreamingIdentifier(
        pipeline, window_s=raw[0].n_frames * dwell, min_reads=32
    )
    test_raws = [raw[i] for i in test_idx]

    obs.enable()
    obs.reset()
    try:
        cells = resilience_sweep(identifier, test_raws, seed=seed)

        first = test_raws[0]
        identifier.calibrator = _clean_calibrator(first)
        windows = split_windows(first.log, identifier.window_s)
        reps = 20 if quick else 60
        offered = [windows[i % len(windows)] for i in range(reps)]
        transport = transport_study(identifier, offered, seed=seed)
        breaker = breaker_cycle_study(identifier, windows[0])
        metrics_doc = json.loads(obs.get_registry().to_json())
    finally:
        obs.disable()

    uncaught = sum(c.uncaught for c in cells) + transport["uncaught_exceptions"]
    if uncaught:
        raise RuntimeError(
            f"supervision contract violated: {uncaught} uncaught exception(s)"
        )
    if not breaker["full_cycle_observed"]:
        raise RuntimeError(
            "breaker did not complete a closed→open→half-open→closed cycle"
        )

    clean = next(c for c in cells if c.severity == 0.0)
    cell_docs = []
    for c in cells:
        c_doc = asdict(c)
        if np.isnan(c_doc["accuracy"]):
            c_doc["accuracy"] = None  # strict-JSON-safe "all abstained"
        cell_docs.append(c_doc)
    return {
        "schema": "repro.runtime.bench.v1",
        "quick": bool(quick),
        "seed": int(seed),
        "setup_s": round(setup_s, 3),
        "epochs": int(epochs),
        "n_test_recordings": len(test_raws),
        "zero_uncaught_exceptions": True,
        "clean_throughput_w_per_s": clean.throughput_w_per_s,
        "cells": cell_docs,
        "transport": transport,
        "breaker_cycle": breaker,
        "metrics": metrics_doc,
    }


def run_ext_resilience(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Supervised-runtime resilience: the fault sweep that cannot crash.

    The extension-study entry point (``ext-resilience``): runs
    :func:`run_resilience_bench` and reports decided-rate and
    recovered-throughput rows per fault cell plus the transport and
    breaker-cycle outcomes.
    """
    doc = run_resilience_bench(quick=quick, seed=seed)
    rows = []
    for cell in doc["cells"]:
        decided_rate = cell["decided"] / max(cell["n_windows"], 1)
        rows.append(
            ExperimentRow(
                f"{cell['kind']} s={cell['severity']:.1f} decided",
                None,
                decided_rate,
                unit="rate",
            )
        )
        rows.append(
            ExperimentRow(
                f"{cell['kind']} s={cell['severity']:.1f} throughput",
                None,
                cell["throughput_w_per_s"],
                unit="w/s",
            )
        )
    transport = doc["transport"]
    rows.append(
        ExperimentRow(
            "transport s=0.9 delivered rate",
            None,
            transport["windows_delivered"] / max(transport["windows_offered"], 1),
            unit="rate",
        )
    )
    rows.append(
        ExperimentRow(
            "breaker full cycle observed",
            None,
            1.0 if doc["breaker_cycle"]["full_cycle_observed"] else 0.0,
        )
    )
    return ExperimentResult(
        experiment_id="ext-resilience",
        title="Supervised runtime: fault sweep through the supervisor",
        rows=rows,
        notes=(
            "Every window of the PR 1 fault sweep served through "
            "PipelineSupervisor: failures degrade to abstain/dead-letter "
            "decisions (zero uncaught exceptions asserted); transport "
            "faults at severity 0.9 are recovered by seeded full-jitter "
            "retries; the predict breaker demonstrably recovers "
            "closed→open→half-open→closed on a fake clock."
        ),
        extras={
            "transport": str(transport),
            "breaker transitions": str(doc["breaker_cycle"]["transitions"]),
        },
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the bench and write the JSON artifact."""
    import argparse
    import sys
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.resilience",
        description="Fault sweep through the supervised runtime.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workload (smaller, faster)"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_ext_resilience.json"),
        help="artifact path (default: BENCH_ext_resilience.json)",
    )
    args = parser.parse_args(argv)

    doc = run_resilience_bench(quick=args.quick, seed=args.seed)
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")

    out = sys.stdout.write
    out(f"wrote {args.out}\n")
    out(
        f"{'fault':<18}{'sev':>5}{'windows':>9}{'decided':>9}"
        f"{'abstain':>9}{'dead':>6}{'w/s':>8}\n"
    )
    for cell in doc["cells"]:
        out(
            f"{cell['kind']:<18}{cell['severity']:>5.1f}{cell['n_windows']:>9}"
            f"{cell['decided']:>9}{cell['abstained']:>9}{cell['dead_letters']:>6}"
            f"{cell['throughput_w_per_s']:>8.2f}\n"
        )
    transport = doc["transport"]
    out(
        f"transport s={transport['severity']:.1f}: "
        f"{transport['windows_delivered']}/{transport['windows_offered']} windows "
        f"delivered in {transport['fetch_attempts']} attempts, "
        f"{transport['recovered_throughput_w_per_s']:.2f} decided w/s\n"
    )
    out(
        "breaker cycle: "
        + " -> ".join("/".join(t) for t in doc["breaker_cycle"]["transitions"])
        + "\n"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
