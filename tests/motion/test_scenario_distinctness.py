"""Scenario distinctness: the class design the evaluation relies on."""

from __future__ import annotations

import numpy as np

from repro.motion import SCENARIOS
from repro.motion.primitives import PRIMITIVES


class TestClassDesign:
    def test_two_person_combinations_unique(self):
        combos = [s.primitives for s in SCENARIOS.values()]
        assert len(set(combos)) == len(combos)

    def test_first_person_duplicates_known(self):
        """A05/A06 duplicate A01/A03's first-person primitive — the
        exact pairs run_fig11 must exclude in its 1-person arm."""
        first = {}
        duplicates = set()
        for label, scenario in sorted(SCENARIOS.items()):
            p1 = scenario.primitives[0]
            if p1 in first:
                duplicates.add(label)
            else:
                first[p1] = label
        assert duplicates == {"A05", "A06"}

    def test_every_primitive_is_used_somewhere(self):
        used = {p for s in SCENARIOS.values() for p in s.primitives}
        assert used == set(PRIMITIVES)

    def test_descriptions_distinct_and_informative(self):
        descriptions = [s.description for s in SCENARIOS.values()]
        assert len(set(descriptions)) == len(descriptions)
        for d in descriptions:
            assert "P1" in d or "both" in d


class TestSignatureSeparation:
    def test_primitive_signal_energy_differs(self):
        """Primitives must be distinguishable at the raw-signal level:
        their hand-motion energy spectra should not all coincide."""
        t = np.linspace(0.0, 6.0, 240)
        energies = {}
        for name, primitive in PRIMITIVES.items():
            signals = primitive.sample(t, np.random.default_rng(0))
            movement = np.stack(
                [signals["dx"], signals["dy"], signals["hand_lateral"],
                 signals["hand_extend"]]
            )
            energies[name] = float(np.var(movement))
        values = np.array(sorted(energies.values()))
        # Spread of at least an order of magnitude across the vocabulary.
        assert values[-1] > 10 * max(values[0], 1e-6)
