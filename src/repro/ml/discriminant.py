"""Quadratic discriminant analysis (Fig. 9 baseline).

Each class gets a full-covariance Gaussian, shrunk toward a scaled
identity — essential here because the spectrum feature dimension
usually exceeds the per-class sample count.

Implementation note: spectrum-frame features run to tens of thousands
of dimensions, so the class covariance is never materialised.  With
``n_c`` samples the sample covariance has rank < ``n_c``; writing the
shrunk covariance as ``alpha*s*I + V diag(w) V^T`` (V from the thin
SVD of the centred class data) gives Woodbury-form Mahalanobis
distances and log-determinants in O(n_c * d) memory instead of O(d^2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import Classifier, LabelEncoder, validate_xy


@dataclass
class _ClassModel:
    mean: np.ndarray          # (d,)
    basis: np.ndarray         # (d, r) orthonormal
    eigvals: np.ndarray       # (r,) sample-covariance eigenvalues
    ridge: float              # alpha * sigma (isotropic floor)
    shrink: float             # 1 - reg_param
    log_det: float
    log_prior: float

    def neg_half_mahalanobis(self, x: np.ndarray) -> np.ndarray:
        """``-0.5 * (x - mu)^T cov^{-1} (x - mu)`` for rows of ``x``."""
        diff = x - self.mean
        base = np.sum(diff**2, axis=1) / self.ridge
        if self.basis.shape[1]:
            proj = diff @ self.basis  # (n, r)
            lam = self.shrink * self.eigvals
            correction = lam / (self.ridge * (self.ridge + lam))
            base = base - np.sum(proj**2 * correction[None, :], axis=1)
        return -0.5 * base


class QuadraticDiscriminantAnalysis(Classifier):
    """QDA with covariance shrinkage.

    Args:
        reg_param: shrinkage in [0, 1]; the class covariance becomes
            ``(1 - reg) * S + reg * tr(S)/d * I``.
    """

    def __init__(self, reg_param: float = 0.3) -> None:
        if not 0.0 <= reg_param <= 1.0:
            raise ValueError("reg_param must be in [0, 1]")
        self.reg_param = reg_param
        self._encoder = LabelEncoder()
        self._models: list[_ClassModel] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "QuadraticDiscriminantAnalysis":
        """Fit the classifier; returns ``self``."""
        x, y = validate_xy(x, y)
        ids = self._encoder.fit_transform(y)
        d = x.shape[1]
        self._models = []
        for cls in range(self._encoder.n_classes):
            members = x[ids == cls]
            n_c = len(members)
            mean = members.mean(axis=0)
            centred = members - mean
            # Thin SVD: covariance eigenpairs without forming (d, d).
            _u, s, vt = np.linalg.svd(centred, full_matrices=False)
            eigvals = (s**2) / max(n_c - 1, 1)
            keep = eigvals > 1e-12 * max(float(eigvals.max()), 1e-30)
            eigvals = eigvals[keep]
            basis = vt[keep].T
            trace = float(eigvals.sum())
            sigma = trace / d if trace > 0 else 1.0
            ridge = max(self.reg_param * sigma, 1e-12)
            shrink = 1.0 - self.reg_param
            lam = shrink * eigvals
            log_det = float(
                np.sum(np.log(ridge + lam)) + (d - len(eigvals)) * np.log(ridge)
            )
            self._models.append(
                _ClassModel(
                    mean=mean,
                    basis=basis,
                    eigvals=eigvals,
                    ridge=ridge,
                    shrink=shrink,
                    log_det=log_det,
                    log_prior=float(np.log(n_c / len(x))),
                )
            )
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Per-class log posterior (up to a constant), ``(n, k)``."""
        if not self._models:
            raise RuntimeError("classifier not fitted")
        x = np.asarray(x, dtype=np.float64)
        out = np.empty((len(x), len(self._models)))
        for cls, model in enumerate(self._models):
            out[:, cls] = (
                model.log_prior
                - 0.5 * model.log_det
                + model.neg_half_mahalanobis(x)
            )
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class ids for ``x``, shape ``(B,)``."""
        return self._encoder.inverse(self.decision_function(x).argmax(axis=1))
