"""Vectorised geometry kernels vs their scalar counterparts."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel import as_traj, crossing_mask, pairwise_distance, segment_point_distance
from repro.geometry import Segment, Vec2

coord = st.floats(min_value=-50, max_value=50, allow_nan=False)


class TestAsTraj:
    def test_broadcast_point(self):
        out = as_traj(np.array([1.0, 2.0]), 5)
        assert out.shape == (5, 2)
        assert (out == [1.0, 2.0]).all()

    def test_passthrough_trajectory(self):
        traj = np.zeros((7, 2))
        assert as_traj(traj, 7) is traj

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            as_traj(np.zeros((3, 2)), 7)


class TestPairwiseDistance:
    def test_matches_scalar(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[3.0, 4.0], [1.0, 1.0]])
        np.testing.assert_allclose(pairwise_distance(a, b), [5.0, 0.0])

    def test_static_point_broadcast(self):
        traj = np.array([[0.0, 0.0], [0.0, 2.0]])
        np.testing.assert_allclose(
            pairwise_distance(traj, np.array([0.0, 1.0])), [1.0, 1.0]
        )


class TestSegmentPointDistance:
    @given(coord, coord, coord, coord, coord, coord)
    def test_matches_scalar_implementation(self, ax, ay, bx, by, px, py):
        scalar = Segment(Vec2(ax, ay), Vec2(bx, by)).distance_to_point(Vec2(px, py))
        vector = segment_point_distance(
            np.array([[ax, ay]]), np.array([[bx, by]]), np.array([[px, py]])
        )[0]
        assert vector == pytest.approx(scalar, rel=1e-9, abs=1e-9)

    def test_time_axis(self):
        a = np.zeros((3, 2))
        b = np.broadcast_to(np.array([10.0, 0.0]), (3, 2))
        p = np.array([[5.0, 1.0], [5.0, 2.0], [15.0, 0.0]])
        np.testing.assert_allclose(segment_point_distance(a, b, p), [1.0, 2.0, 5.0])


class TestCrossingMask:
    def test_blocked_in_the_middle(self):
        mask = crossing_mask(
            np.array([0.0, 0.0]), np.array([10.0, 0.0]), np.array([5.0, 0.0]), 0.5
        )
        assert mask[0]

    def test_endpoint_not_counted(self):
        # The disc sits exactly at the destination (a tag on a body).
        mask = crossing_mask(
            np.array([0.0, 0.0]), np.array([10.0, 0.0]), np.array([10.0, 0.0]), 0.5
        )
        assert not mask[0]

    def test_time_varying_blocker(self):
        steps = 5
        a = np.zeros((steps, 2))
        b = np.broadcast_to(np.array([10.0, 0.0]), (steps, 2))
        # Blocker walks across the path: only mid steps block.
        y = np.linspace(-3, 3, steps)
        blocker = np.stack([np.full(steps, 5.0), y], axis=1)
        mask = crossing_mask(a, b, blocker, 0.5)
        assert not mask[0] and not mask[-1]
        assert mask[steps // 2]

    def test_miss_is_false(self):
        mask = crossing_mask(
            np.array([0.0, 0.0]), np.array([10.0, 0.0]), np.array([5.0, 3.0]), 0.5
        )
        assert not mask[0]
