"""Span trees: nesting, thread safety, the disabled fast path."""

from __future__ import annotations

import threading

from repro import obs
from repro.obs.tracing import _NOOP_SPAN, span


class TestNesting:
    def test_child_attaches_to_parent(self):
        obs.enable()
        with span("outer"):
            with span("inner"):
                pass
        roots = obs.get_collector().drain()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner"]
        assert roots[0].children[0].children == []

    def test_siblings_stay_ordered(self):
        obs.enable()
        with span("parent"):
            with span("a"):
                pass
            with span("b"):
                pass
        (root,) = obs.get_collector().drain()
        assert [c.name for c in root.children] == ["a", "b"]

    def test_durations_nest_sanely(self):
        obs.enable()
        with span("outer"):
            with span("inner"):
                sum(range(1000))
        (root,) = obs.get_collector().drain()
        assert root.wall_ms >= root.children[0].wall_ms >= 0.0
        assert root.cpu_ms >= 0.0

    def test_attrs_and_set(self):
        obs.enable()
        with span("stage", reads=7) as s:
            s.set(frames=3)
        (root,) = obs.get_collector().drain()
        assert root.attrs == {"reads": 7, "frames": 3}

    def test_exception_still_closes_span(self):
        obs.enable()
        try:
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        (root,) = obs.get_collector().drain()
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]

    def test_walk_is_depth_first(self):
        obs.enable()
        with span("r"):
            with span("a"):
                with span("a1"):
                    pass
            with span("b"):
                pass
        roots = obs.get_collector().drain()
        assert [s.name for s in obs.walk_spans(roots)] == ["r", "a", "a1", "b"]

    def test_as_dict_roundtrips_tree(self):
        obs.enable()
        with span("root", k="v"):
            with span("leaf"):
                pass
        (root,) = obs.get_collector().drain()
        d = root.as_dict()
        assert d["name"] == "root"
        assert d["attrs"] == {"k": "v"}
        assert d["children"][0]["name"] == "leaf"

    def test_render_span_tree_mentions_every_span(self):
        obs.enable()
        with span("top"):
            with span("mid"):
                pass
        text = obs.render_span_tree(obs.get_collector().drain())
        assert "top" in text and "mid" in text
        assert "wall=" in text and "cpu=" in text


class TestThreadSafety:
    def test_concurrent_roots_all_collected(self):
        obs.enable()
        n_threads, per_thread = 8, 50

        def work():
            for _ in range(per_thread):
                with span("worker"):
                    with span("step"):
                        pass

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = obs.get_collector().drain()
        assert len(roots) == n_threads * per_thread
        assert all(len(r.children) == 1 for r in roots)

    def test_stacks_are_per_thread(self):
        obs.enable()
        seen = {}

        def work(tag):
            with span(f"root.{tag}"):
                with span(f"leaf.{tag}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,), name=f"w{i}") for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for root in obs.get_collector().drain():
            tag = root.name.split(".")[1]
            seen[tag] = [c.name for c in root.children]
        assert seen == {str(i): [f"leaf.{i}"] for i in range(4)}


class TestCollector:
    def test_capacity_counts_drops(self):
        from repro.obs.tracing import SpanCollector, Span

        c = SpanCollector(max_roots=2)
        for i in range(5):
            c.add_root(Span(name=f"s{i}"))
        assert len(c.snapshot()) == 2
        assert c.dropped == 3
        c.drain()
        assert c.dropped == 0

    def test_durations_by_name_covers_children(self):
        obs.enable()
        with span("parent"):
            with span("child"):
                pass
            with span("child"):
                pass
        by_name = obs.get_collector().durations_by_name()
        assert len(by_name["parent"]) == 1
        assert len(by_name["child"]) == 2


class TestDisabledPath:
    def test_disabled_span_is_shared_noop(self):
        assert not obs.is_enabled()
        s = span("anything", attr=1)
        assert s is _NOOP_SPAN
        with s as handle:
            handle.set(ignored=True)
        assert obs.get_collector().snapshot() == []

    def test_disabled_records_no_metrics(self):
        with span("stage.x"):
            pass
        assert obs.get_registry().collect() == []

    def test_enable_disable_roundtrip(self):
        obs.enable()
        assert obs.is_enabled()
        with span("live"):
            pass
        obs.disable()
        with span("dead"):
            pass
        names = [r.name for r in obs.get_collector().drain()]
        assert names == ["live"]

    def test_env_var_enables(self):
        import pathlib
        import subprocess
        import sys

        repo = pathlib.Path(__file__).resolve().parents[2]
        code = (
            "from repro.obs import tracing; "
            "import sys; sys.exit(0 if tracing.is_enabled() else 1)"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={
                "REPRO_OBS": "1",
                "PYTHONPATH": str(repo / "src"),
                "PATH": "/usr/bin:/bin",
            },
            cwd=str(repo),
        )
        assert proc.returncode == 0


class TestAutoHistogram:
    def test_live_span_observes_latency_histogram(self):
        obs.enable()
        with span("dsp.music"):
            pass
        metrics = {m.name: m for m in obs.get_registry().collect()}
        hist = metrics["dsp.music.latency_ms"]
        assert hist.kind == "histogram"
        assert hist.count == 1
