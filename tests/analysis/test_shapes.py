"""Shape-tag parsing, contract matching/conflict, and RPR015."""

from __future__ import annotations

import pytest

from repro.analysis.dataflow.shapes import (
    ContractParseError,
    extract_contracts,
    find_shape_tags,
    parse_shape_tag,
)
from repro.analysis.lint import lint_source


# ---------------------------------------------------------------------------
# Tag parsing.


def test_find_tags_in_docstring():
    doc = "Returns:\n    spectra, shape: ``(W, n_tags, A)``.\n"
    assert find_shape_tags(doc) == ["W, n_tags, A"]


def test_parse_literal_symbol_and_ellipsis():
    c = parse_shape_tag("..., n_tags, 180")
    assert c.has_ellipsis
    assert c.dims[-1] == 180
    assert c.dims[-2] == "n_tags"


def test_malformed_tag_raises():
    with pytest.raises(ContractParseError):
        parse_shape_tag("W,, A")


def test_extract_contracts_maps_args_and_returns():
    doc = (
        "Do a thing.\n\n"
        "Args:\n"
        "    x: input frames, shape: ``(W, N)``.\n"
        "    n: a plain int.\n\n"
        "Returns:\n"
        "    spectra, shape: ``(W, A)``.\n"
    )
    contracts = extract_contracts(doc)
    assert set(contracts.args) == {"x"}
    assert len(contracts.returns) == 1
    assert contracts.returns[0].rank == 2


# ---------------------------------------------------------------------------
# Matching and conflict.


def test_matches_literal_and_symbol():
    c = parse_shape_tag("W, 180")
    assert c.matches((5, 180)) is None
    assert c.matches((5, 360)) is not None
    assert c.matches((5,)) is not None  # rank mismatch


def test_ellipsis_absorbs_leading_dims():
    c = parse_shape_tag("..., N")
    assert c.matches((7,)) is None
    assert c.matches((3, 4, 7)) is None


def test_conflict_rank():
    a = parse_shape_tag("W, N")
    b = parse_shape_tag("W, N, A")
    assert a.conflict_with(b) is not None


def test_conflict_literal_dims_from_right():
    a = parse_shape_tag("F, n_tags, 180")
    b = parse_shape_tag("F, n_tags, 360")
    assert a.conflict_with(b) is not None


def test_symbols_are_wildcards():
    a = parse_shape_tag("W, N")
    b = parse_shape_tag("frames, bins")
    assert a.conflict_with(b) is None


def test_ellipsis_disables_rank_conflict():
    a = parse_shape_tag("N,")
    b = parse_shape_tag("..., N")
    assert a.conflict_with(b) is None


# ---------------------------------------------------------------------------
# RPR015 on source.


def rpr015(src: str) -> list[int]:
    findings = lint_source(src, path="mod.py", select=["RPR015"])
    assert all(f.code == "RPR015" for f in findings)
    return [f.line for f in findings]


PRODUCER = (
    "def make(n):\n"
    '    """Produce.\n'
    "\n"
    "    Returns:\n"
    "        spectra, shape: ``(F, 180)``.\n"
    '    """\n'
    "    return n\n"
)


def test_conflicting_edge_flagged_direct_and_via_assignment():
    src = PRODUCER + (
        "def pool(spectrum):\n"
        '    """Pool.\n'
        "\n"
        "    Args:\n"
        "        spectrum: spectra, shape: ``(F, 360)``.\n"
        '    """\n'
        "    return spectrum\n"
        "def run(n):\n"
        "    s = make(n)\n"
        "    a = pool(s)\n"
        "    return a, pool(make(n))\n"
    )
    assert rpr015(src) == [17, 18]


def test_agreeing_edge_clean():
    src = PRODUCER + (
        "def pool(spectrum):\n"
        '    """Pool.\n'
        "\n"
        "    Args:\n"
        "        spectrum: spectra, shape: ``(..., 180)``.\n"
        '    """\n'
        "    return spectrum\n"
        "def run(n):\n"
        "    return pool(make(n))\n"
    )
    assert rpr015(src) == []


def test_keyword_argument_edge_checked():
    src = PRODUCER + (
        "def pool(scale, spectrum):\n"
        '    """Pool.\n'
        "\n"
        "    Args:\n"
        "        spectrum: spectra, shape: ``(F, 360)``.\n"
        '    """\n'
        "    return spectrum\n"
        "def run(n):\n"
        "    return pool(1.0, spectrum=make(n))\n"
    )
    assert rpr015(src) == [16]


def test_malformed_tag_is_a_finding():
    src = (
        "def make(n):\n"
        '    """Produce.\n'
        "\n"
        "    Returns:\n"
        "        spectra, shape: ``(F,, 180)``.\n"
        '    """\n'
        "    return n\n"
    )
    assert rpr015(src) == [1]


def test_reassignment_clears_tracked_contract():
    src = PRODUCER + (
        "def pool(spectrum):\n"
        '    """Pool.\n'
        "\n"
        "    Args:\n"
        "        spectrum: spectra, shape: ``(F, 360)``.\n"
        '    """\n'
        "    return spectrum\n"
        "def run(n):\n"
        "    s = make(n)\n"
        "    s = n\n"
        "    return pool(s)\n"
    )
    assert rpr015(src) == []
