"""Deep instrumentation: per-layer span wrapping for :mod:`repro.nn`.

The inline spans in :mod:`repro.core.model` time the network as two
stages (``nn.forward`` / ``nn.backward``).  When a profile needs to
know *which layer* inside those stages is hot, :func:`nn_layer_spans`
temporarily wraps ``forward``/``backward`` of every imported
:class:`repro.nn.module.Module` subclass in a span named
``nn.<classname>.forward`` (class name lowercased so the span's
auto-registered ``.latency_ms`` histogram satisfies the metric naming
convention) — the same subclass-walking patch strategy
as :func:`repro.analysis.sanitize.anomaly_detection`, and with the
same contract: process-global, restored on exit, nested activations
are no-ops.

This is the expensive end of the observability spectrum (one span per
layer per call), which is why it is a separate, opt-in context manager
instead of always-on instrumentation.
"""

from __future__ import annotations

import functools
import re
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator

from repro.obs.tracing import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nn.module import Module

__all__ = ["nn_layer_spans"]

_armed = False


def _walk_module_classes() -> list[type["Module"]]:
    """Every imported Module subclass, including Module itself.

    Imported lazily so :mod:`repro.obs` stays dependency-free at
    import time (instrumented nn modules import obs leaf modules; a
    top-level import here would be circular).
    """
    from repro.nn.module import Module

    classes: list[type[Module]] = [Module]
    stack: list[type[Module]] = [Module]
    while stack:
        for sub in stack.pop().__subclasses__():
            if sub not in classes:
                classes.append(sub)
                stack.append(sub)
    return classes


def _span_component(class_name: str) -> str:
    """Lowercase a class name into a metric-safe span component.

    Span names feed the auto-registered ``<name>.latency_ms``
    histogram, whose name must match ``[a-z][a-z0-9_.]*`` — so
    ``Dense`` becomes ``dense`` and any character outside that
    alphabet becomes ``_``.
    """
    sanitized = re.sub(r"[^a-z0-9_]", "_", class_name.lower())
    return sanitized or "module"


def _wrap(orig: Callable, name: str) -> Callable:
    """Wrap one method so each call runs inside a named span."""

    @functools.wraps(orig)
    def wrapper(self: Module, *args: object, **kwargs: object) -> object:
        with span(name):
            return orig(self, *args, **kwargs)

    return wrapper


@contextmanager
def nn_layer_spans() -> Iterator[None]:
    """Arm per-layer ``nn.<classname>.forward/backward`` spans.

    Only classes already imported when the context manager arms are
    wrapped; import your model first.  Nested activations are no-ops —
    the outermost context owns the instrumentation.
    """
    global _armed
    if _armed:
        yield
        return
    undo: list[Callable[[], None]] = []
    _armed = True
    try:
        for cls in _walk_module_classes():
            for method in ("forward", "backward"):
                if method not in cls.__dict__:
                    continue
                orig = cls.__dict__[method]
                wrapped = _wrap(
                    orig, f"nn.{_span_component(cls.__name__)}.{method}"
                )
                setattr(cls, method, wrapped)
                undo.append(lambda c=cls, m=method, o=orig: setattr(c, m, o))
        yield
    finally:
        for restore in reversed(undo):
            restore()
        _armed = False
