"""Run every paper experiment and write EXPERIMENTS.md.

Usage::

    python scripts/run_experiments.py [--full] [--only fig09,fig10] [--seed 0]

Results are appended to EXPERIMENTS.md incrementally, so a partial run
still leaves a usable record.  Generated corpora are cached on disk
(``.repro_cache/``) and reused by the pytest benchmark suite.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.eval import ALL_EXPERIMENTS

REPO = Path(__file__).resolve().parents[1]

HEADER = """# EXPERIMENTS — paper vs measured

Reproduction record for Fan et al., *Multiple Object Activity
Identification using RFIDs* (ICDCS 2018).  Every entry regenerates one
paper table/figure on the simulated substrate (see DESIGN.md for the
substitutions).  Absolute accuracies are not expected to match the
hardware testbed; the *shape* of each result is what is verified.
Paper values marked `~` are read off a bar chart, not stated in text.

Regenerate with `python scripts/run_experiments.py` (quick mode) or
`pytest benchmarks/ --benchmark-only`.  Each block's footer records how
it was produced: dedicated script runs use the full quick-mode training
budget; blocks tagged "recorded by the benchmark suite" come from the
trimmed-budget benchmark pass and are correspondingly noisier.  Small
held-out splits (12-48 samples) give the accuracies a granularity of
several points; treat trends, not single cells, as the signal.

"""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale datasets")
    parser.add_argument("--only", type=str, default="", help="comma-separated ids")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=str(REPO / "EXPERIMENTS.md"))
    args = parser.parse_args()

    wanted = [x for x in args.only.split(",") if x] or list(ALL_EXPERIMENTS)
    results: dict[str, str] = {}
    state_path = REPO / ".repro_cache" / "experiment_state.json"
    if state_path.exists():
        results = json.loads(state_path.read_text())

    for exp_id in wanted:
        if exp_id in results:
            print(f"[skip] {exp_id} (already recorded)")
            continue
        runner = ALL_EXPERIMENTS[exp_id]
        print(f"[run ] {exp_id} ...", flush=True)
        t0 = time.monotonic()
        result = runner(quick=not args.full, seed=args.seed)
        elapsed = time.monotonic() - t0
        block = result.render() + f"\n\n(wall-clock: {elapsed:.0f} s, " \
            f"mode: {'full' if args.full else 'quick'}, seed: {args.seed})\n"
        results[exp_id] = block
        print(block, flush=True)
        state_path.parent.mkdir(exist_ok=True)
        state_path.write_text(json.dumps(results))
        _write(Path(args.out), results)
    print("done.")


def _write(out: Path, results: dict[str, str]) -> None:
    parts = [HEADER]
    for exp_id in ALL_EXPERIMENTS:
        if exp_id in results:
            parts.append("```text\n" + results[exp_id] + "```\n")
    out.write_text("\n".join(parts))


if __name__ == "__main__":
    main()
