"""Conv1d and pooling: shapes, known outputs, exact gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Conv1d, GlobalAveragePool1d, MaxPool1d, check_module_gradients

RNG = np.random.default_rng(3)


class TestConv1d:
    def test_output_length(self):
        conv = Conv1d(2, 4, kernel=5, rng=RNG, stride=2, padding=2)
        out = conv(RNG.normal(size=(3, 2, 20)))
        assert out.shape == (3, 4, 10)

    def test_identity_kernel(self):
        conv = Conv1d(1, 1, kernel=1, rng=RNG)
        conv.weight.value[...] = 1.0
        conv.bias.value[...] = 0.0
        x = RNG.normal(size=(2, 1, 7))
        np.testing.assert_allclose(conv(x), x)

    def test_known_convolution(self):
        conv = Conv1d(1, 1, kernel=3, rng=RNG)
        conv.weight.value[0, 0] = [1.0, 2.0, 3.0]
        conv.bias.value[...] = 0.5
        x = np.arange(5.0).reshape(1, 1, 5)
        out = conv(x)
        # Cross-correlation: [0,1,2]@[1,2,3]+0.5 = 8.5, ...
        np.testing.assert_allclose(out[0, 0], [8.5, 14.5, 20.5])

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (3, 2)])
    def test_gradients(self, stride, padding):
        conv = Conv1d(2, 3, kernel=3, rng=RNG, stride=stride, padding=padding)
        errors = check_module_gradients(conv, RNG.normal(size=(2, 2, 11)), RNG)
        assert max(errors.values()) < 1e-7

    def test_wrong_channels_rejected(self):
        conv = Conv1d(2, 3, kernel=3, rng=RNG)
        with pytest.raises(ValueError):
            conv(RNG.normal(size=(2, 5, 11)))

    def test_too_small_input_rejected(self):
        conv = Conv1d(1, 1, kernel=9, rng=RNG)
        with pytest.raises(ValueError):
            conv(RNG.normal(size=(1, 1, 4)))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            Conv1d(1, 1, kernel=0, rng=RNG)


class TestMaxPool1d:
    def test_known_output(self):
        pool = MaxPool1d(2)
        x = np.array([[[1.0, 5.0, 2.0, 3.0, 7.0, 0.0]]])
        np.testing.assert_allclose(pool(x), [[[5.0, 3.0, 7.0]]])

    def test_overlapping_stride(self):
        pool = MaxPool1d(3, stride=1)
        x = np.array([[[1.0, 5.0, 2.0, 3.0]]])
        np.testing.assert_allclose(pool(x), [[[5.0, 5.0]]])

    def test_gradients(self):
        pool = MaxPool1d(2)
        # Perturb away from ties for a stable argmax.
        x = RNG.normal(size=(2, 3, 8)) * 10
        errors = check_module_gradients(pool, x, RNG)
        assert errors["input"] < 1e-7

    def test_gradient_routing(self):
        pool = MaxPool1d(2)
        x = np.array([[[1.0, 5.0, 2.0, 3.0]]])
        pool(x)
        grad = pool.backward(np.array([[[1.0, 1.0]]]))
        np.testing.assert_allclose(grad, [[[0.0, 1.0, 0.0, 1.0]]])


class TestGlobalAveragePool:
    def test_output(self):
        gap = GlobalAveragePool1d()
        x = np.arange(6.0).reshape(1, 2, 3)
        np.testing.assert_allclose(gap(x), [[1.0, 4.0]])

    def test_gradients(self):
        gap = GlobalAveragePool1d()
        errors = check_module_gradients(gap, RNG.normal(size=(2, 3, 5)), RNG)
        assert errors["input"] < 1e-7
