"""1-D convolution and pooling (the spectrum-frame encoders).

The paper's CONV-E1/E2/E3 layers slide over the 180-angle axis of the
pseudospectrum frame; 1-D convolution over that axis with the tag axis
as channels realises the same structure.  Implemented as one matmul
per kernel tap over strided views, so memory stays ``O(input)`` — an
im2col buffer is ``K`` times the input and its transpose-copy becomes
the bottleneck at the large batches cross-stream serving produces.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import he_uniform
from repro.nn.module import Module, Parameter


def _out_length(length: int, kernel: int, stride: int, padding: int) -> int:
    out = (length + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"conv output length {out} <= 0 (L={length}, K={kernel}, "
            f"stride={stride}, pad={padding})"
        )
    return out


class Conv1d(Module):
    """Cross-correlation over the last axis: ``(B, C_in, L) -> (B, C_out, L_out)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        name: str = "conv",
    ) -> None:
        if kernel < 1 or stride < 1 or padding < 0:
            raise ValueError("kernel/stride must be >= 1, padding >= 0")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel
        self.weight = Parameter(
            he_uniform((out_channels, in_channels, kernel), rng, fan_in=fan_in),
            name=f"{name}.W",
        )
        self.bias = Parameter(np.zeros(out_channels), name=f"{name}.b")
        self._x_pad: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def _tap_view(self, x_pad: np.ndarray, k: int, l_out: int) -> np.ndarray:
        """Strided view of tap ``k``'s input columns, shape ``(B, C, L_out)``."""
        return x_pad[:, :, k : k + self.stride * l_out : self.stride]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (B, {self.in_channels}, L), got {x.shape}"
            )
        batch, _c, length = x.shape
        l_out = _out_length(length, self.kernel, self.stride, self.padding)
        if self.padding:
            x_pad = np.pad(x, ((0, 0), (0, 0), (self.padding, self.padding)))
        else:
            x_pad = x
        self._x_pad = x_pad
        self._x_shape = x.shape
        w = self.weight.value  # (C_out, C, K)
        y = np.empty((batch, self.out_channels, l_out))
        y[...] = self.bias.value[:, None]
        for k in range(self.kernel):
            # (C_out, C) @ (B, C, L_out) broadcasts over the batch.
            y += np.matmul(w[:, :, k], self._tap_view(x_pad, k, l_out))
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._x_pad is None or self._x_shape is None:
            raise RuntimeError("backward before forward")
        batch, _c, length = self._x_shape
        l_out = grad.shape[2]
        w = self.weight.value
        dx_pad = np.zeros_like(self._x_pad)
        for k in range(self.kernel):
            self.weight.grad[:, :, k] += np.tensordot(
                grad, self._tap_view(self._x_pad, k, l_out), axes=([0, 2], [0, 2])
            )
            # Overlapping taps (stride < kernel) accumulate correctly
            # because each tap's += runs on its own strided view in turn.
            dx_pad[:, :, k : k + self.stride * l_out : self.stride] += np.matmul(
                w[:, :, k].T, grad
            )
        self.bias.grad += grad.sum(axis=(0, 2))
        if self.padding:
            return dx_pad[:, :, self.padding : self.padding + length]
        return dx_pad


class MaxPool1d(Module):
    """Max pooling over the last axis."""

    def __init__(self, kernel: int, stride: int | None = None) -> None:
        if kernel < 1:
            raise ValueError("kernel must be >= 1")
        self.kernel = kernel
        self.stride = stride or kernel
        self._x_shape: tuple[int, ...] | None = None
        self._argmax: np.ndarray | None = None
        self._gather: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        if x.ndim != 3:
            raise ValueError(f"expected (B, C, L), got {x.shape}")
        batch, channels, length = x.shape
        l_out = _out_length(length, self.kernel, self.stride, 0)
        gather = (
            np.arange(l_out)[:, None] * self.stride + np.arange(self.kernel)[None, :]
        )
        windows = x[:, :, gather]  # (B, C, L_out, K)
        self._argmax = windows.argmax(axis=3)
        self._x_shape = x.shape
        self._gather = gather
        return windows.max(axis=3)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._x_shape is None or self._argmax is None or self._gather is None:
            raise RuntimeError("backward before forward")
        batch, channels, length = self._x_shape
        dx = np.zeros(self._x_shape)
        l_out = grad.shape[2]
        b_idx, c_idx, o_idx = np.indices((batch, channels, l_out))
        src = self._gather[o_idx, self._argmax]
        np.add.at(dx, (b_idx, c_idx, src), grad)
        return dx


class GlobalAveragePool1d(Module):
    """Mean over the last axis: ``(B, C, L) -> (B, C)``."""

    def __init__(self) -> None:
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass (caches what :meth:`backward` needs)."""
        self._x_shape = x.shape
        return x.mean(axis=2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward pass; returns the input gradient."""
        if self._x_shape is None:
            raise RuntimeError("backward before forward")
        batch, channels, length = self._x_shape
        return np.broadcast_to(grad[:, :, None] / length, self._x_shape).copy()
