"""Numerical gradient checking for layers and whole models.

Every analytic backward pass in :mod:`repro.nn` is validated in the
test suite against central finite differences through these helpers.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.module import Module


def numerical_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = f(x)
        flat[i] = orig - eps
        minus = f(x)
        flat[i] = orig
        out[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_module_gradients(
    module: Module,
    x: np.ndarray,
    rng: np.random.Generator,
    eps: float = 1e-6,
    training: bool = False,
) -> dict[str, float]:
    """Compare analytic and numerical gradients of a module.

    Builds a random linear probe ``loss = sum(w * forward(x))`` so the
    loss is scalar and every output element matters, then checks the
    gradient with respect to the input and every parameter.

    Returns:
        Mapping from ``"input"`` / parameter name to relative error.
    """
    probe = rng.normal(0.0, 1.0, module.forward(x, training=training).shape)

    def loss_given_input(arr: np.ndarray) -> float:
        return float(np.sum(probe * module.forward(arr, training=training)))

    module.zero_grad()
    y = module.forward(x, training=training)
    analytic_dx = module.backward(probe * np.ones_like(y))
    errors: dict[str, float] = {}
    numeric_dx = numerical_gradient(loss_given_input, x.copy(), eps)
    errors["input"] = _relative_error(analytic_dx, numeric_dx)

    for p in module.parameters():
        def loss_given_param(_arr: np.ndarray, p=p) -> float:
            return float(np.sum(probe * module.forward(x, training=training)))

        numeric = numerical_gradient(loss_given_param, p.value, eps)
        errors[p.name or "param"] = _relative_error(p.grad, numeric)
    return errors


def _relative_error(a: np.ndarray, b: np.ndarray) -> float:
    denom = max(float(np.linalg.norm(a) + np.linalg.norm(b)), 1e-12)
    return float(np.linalg.norm(a - b) / denom)
