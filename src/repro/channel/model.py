"""Image-source multipath model of the indoor backscatter channel.

The paper's central premise (Section II, Fig. 2) is that an indoor tag
reaches the reader over several paths — the direct ray, wall
reflections, and rays scattered by furniture and *other people's
bodies* — and that moving bodies re-shape the whole angle-of-arrival
spectrum: they block some paths and create new ones.  This module
produces exactly that behaviour from first principles:

* the direct path and four first-order wall reflections come from the
  image-source method;
* every furniture disc and every human torso acts as a point scatterer
  (one extra path per scatterer) and as a blocker (crossing a disc
  attenuates a path leg);
* a diffuse complex-Gaussian term models the unresolved clutter.

A backscatter read is *round trip*: during a TDM slot the active
antenna both illuminates the tag and receives the reply, so the
measured channel is the **square of the one-way gain** computed here
(reciprocity makes the downlink and uplink gains identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.params import ChannelParams
from repro.channel.vectorized import as_traj, crossing_mask, pairwise_distance
from repro.geometry.room import Room
from repro.geometry.shapes import WALLS

_SCATTER_CROSS_SECTION = 0.8
"""Effective scattering cross-section (metres) of a point scatterer."""


@dataclass(frozen=True)
class BodyTrack:
    """A moving human torso over the simulation window.

    Attributes:
        positions: ``(T, 2)`` torso-centre trajectory.
        radius: torso disc radius in metres.
    """

    positions: np.ndarray
    radius: float = 0.18

    def __post_init__(self) -> None:
        arr = np.asarray(self.positions, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("positions must have shape (T, 2)")
        object.__setattr__(self, "positions", arr)
        if self.radius <= 0.0:
            raise ValueError("radius must be positive")

    @property
    def steps(self) -> int:
        """Number of sampled positions in the track."""
        return self.positions.shape[0]


@dataclass(frozen=True)
class PathComponent:
    """One resolved propagation path.

    Attributes:
        name: human-readable path label (``"direct"``, ``"wall:left"``,
            ``"scatterer:3"``, ``"body:1"``).
        distance: ``(T,)`` one-way path length in metres.
        gain: ``(T,)`` complex one-way gain (amplitude and phase).
    """

    name: str
    distance: np.ndarray
    gain: np.ndarray


@dataclass
class MultipathChannel:
    """One-way indoor channel between a reader antenna and a tag.

    Args:
        room: the environment (walls + furniture).
        params: physical constants; see :class:`ChannelParams`.
        rng: random generator used only for the diffuse clutter term.
        max_reflection_order: 1 (default) models first-order wall
            bounces; 2 adds the four corner (double-bounce) images.
            Second-order rays carry the squared wall coefficient, so
            they refine rather than reshape the spectra — the default
            keeps cached corpora comparable across versions.
    """

    room: Room
    params: ChannelParams = field(default_factory=ChannelParams)
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    max_reflection_order: int = 1

    def __post_init__(self) -> None:
        if self.max_reflection_order not in (1, 2):
            raise ValueError("max_reflection_order must be 1 or 2")

    def path_components(
        self,
        antenna: np.ndarray,
        tag: np.ndarray,
        wavelength: np.ndarray | float,
        bodies: tuple[BodyTrack, ...] = (),
        carrier: int | None = None,
    ) -> list[PathComponent]:
        """Enumerate every resolved path between antenna and tag.

        Args:
            antenna: antenna position, ``(2,)`` or per-step ``(T, 2)``.
            tag: tag position, ``(2,)`` or ``(T, 2)``.
            wavelength: carrier wavelength in metres, scalar or ``(T,)``.
            bodies: moving torsos in the scene.
            carrier: index into ``bodies`` of the torso wearing this
                tag; that torso still blocks but does not generate a
                scattered path (the tag sits on it, so the "path" would
                be a degenerate near-field loop).

        Returns:
            A list of :class:`PathComponent`, strongest physics first
            (direct, walls, furniture, bodies).
        """
        steps = self._steps(antenna, tag, bodies)
        ant = as_traj(np.asarray(antenna, dtype=np.float64), steps)
        tag_t = as_traj(np.asarray(tag, dtype=np.float64), steps)
        lam = np.broadcast_to(np.asarray(wavelength, dtype=np.float64), (steps,))
        amp0 = self.params.reference_amplitude

        components: list[PathComponent] = []

        # Direct ray.
        d0 = np.maximum(pairwise_distance(ant, tag_t), 0.05)
        block = self._leg_blockage(ant, tag_t, bodies)
        gain = (amp0 / d0) * block * np.exp(-2j * np.pi * d0 / lam)
        components.append(PathComponent("direct", d0, gain))

        # First-order wall reflections via the image-source method.
        if self.room.wall_reflectivity > 0.0:
            for wall in WALLS:
                comp = self._wall_component(wall, ant, tag_t, lam, bodies)
                components.append(comp)
            if self.max_reflection_order >= 2:
                components.extend(
                    self._corner_components(ant, tag_t, lam, bodies)
                )

        # Furniture scatterers.
        for idx, scatterer in enumerate(self.room.scatterers):
            comp = self._scatter_component(
                f"scatterer:{idx}",
                np.asarray(scatterer.position.as_tuple()),
                scatterer.reflectivity,
                ant,
                tag_t,
                lam,
                bodies,
                skip_scatterer=idx,
            )
            components.append(comp)

        # Human torsos as dynamic scatterers.
        for idx, body in enumerate(bodies):
            if carrier is not None and idx == carrier:
                continue
            comp = self._scatter_component(
                f"body:{idx}",
                body.positions,
                self.params.body_reflectivity,
                ant,
                tag_t,
                lam,
                bodies,
                skip_body=idx,
            )
            components.append(comp)

        return components

    def one_way_gain(
        self,
        antenna: np.ndarray,
        tag: np.ndarray,
        wavelength: np.ndarray | float,
        bodies: tuple[BodyTrack, ...] = (),
        carrier: int | None = None,
        include_diffuse: bool = True,
    ) -> np.ndarray:
        """Total complex one-way gain over time.

        Sums :meth:`path_components` and, when ``include_diffuse`` is
        set, adds zero-mean complex Gaussian clutter.

        Returns:
            ``(T,)`` complex array.
        """
        comps = self.path_components(antenna, tag, wavelength, bodies, carrier)
        total = np.sum([c.gain for c in comps], axis=0)
        if include_diffuse and self.params.diffuse_level > 0.0:
            steps = total.shape[0]
            sigma = self.params.diffuse_level * self.params.reference_amplitude
            noise = self.rng.normal(0.0, sigma, steps) + 1j * self.rng.normal(
                0.0, sigma, steps
            )
            total = total + noise
        return total

    def round_trip_gain(
        self,
        antenna: np.ndarray,
        tag: np.ndarray,
        wavelength: np.ndarray | float,
        bodies: tuple[BodyTrack, ...] = (),
        carrier: int | None = None,
        include_diffuse: bool = True,
    ) -> np.ndarray:
        """Monostatic backscatter gain: the one-way gain squared.

        The same antenna transmits and receives within a TDM slot, so
        by reciprocity the measured channel is ``g ** 2``.
        """
        g = self.one_way_gain(antenna, tag, wavelength, bodies, carrier, include_diffuse)
        return g * g

    # ------------------------------------------------------------------
    # Internals

    @staticmethod
    def _steps(
        antenna: np.ndarray, tag: np.ndarray, bodies: tuple[BodyTrack, ...]
    ) -> int:
        candidates = [np.atleast_2d(np.asarray(antenna)).shape[0]]
        candidates.append(np.atleast_2d(np.asarray(tag)).shape[0])
        candidates.extend(b.steps for b in bodies)
        steps = max(candidates)
        for b in bodies:
            if b.steps != steps and b.steps != 1:
                raise ValueError("all body tracks must share the time axis")
        return steps

    def _leg_blockage(
        self,
        a: np.ndarray,
        b: np.ndarray,
        bodies: tuple[BodyTrack, ...],
        skip_body: int | None = None,
        skip_scatterer: int | None = None,
    ) -> np.ndarray:
        """Multiplicative amplitude factor for discs crossed by leg a--b."""
        steps = max(np.atleast_2d(a).shape[0], np.atleast_2d(b).shape[0])
        factor = np.ones(steps)
        for idx, body in enumerate(bodies):
            if idx == skip_body:
                continue
            mask = crossing_mask(a, b, body.positions, body.radius)
            factor = np.where(mask, factor * self.params.body_blockage, factor)
        for idx, scat in enumerate(self.room.scatterers):
            if idx == skip_scatterer:
                continue
            centre = np.asarray(scat.position.as_tuple())
            mask = crossing_mask(a, b, centre, scat.radius)
            factor = np.where(mask, factor * self.params.furniture_blockage, factor)
        return factor

    def _wall_component(
        self,
        wall: str,
        ant: np.ndarray,
        tag: np.ndarray,
        lam: np.ndarray,
        bodies: tuple[BodyTrack, ...],
    ) -> PathComponent:
        """One first-order wall reflection, with blockage on both legs."""
        image = self._mirror_traj(tag, wall)
        d = np.maximum(pairwise_distance(ant, image), 0.05)
        hit = self._wall_hit_point(ant, image, wall)
        block = self._leg_blockage(ant, hit, bodies) * self._leg_blockage(
            hit, tag, bodies
        )
        amp = self.params.reference_amplitude * self.room.wall_reflectivity / d
        gain = amp * block * np.exp(-2j * np.pi * d / lam)
        return PathComponent(f"wall:{wall}", d, gain)

    def _corner_components(
        self,
        ant: np.ndarray,
        tag: np.ndarray,
        lam: np.ndarray,
        bodies: tuple[BodyTrack, ...],
    ) -> list[PathComponent]:
        """Second-order (double-bounce) wall images.

        Mirroring across one horizontal and one vertical wall composes
        into a corner image; the ray reflects off both walls, so its
        amplitude carries the wall coefficient squared.  Blockage is
        approximated on the end legs (antenna->first wall hit and
        second hit->tag), which dominate the in-room portion of the
        path.
        """
        out: list[PathComponent] = []
        rho2 = self.room.wall_reflectivity**2
        for wall_a in ("left", "right"):
            for wall_b in ("bottom", "top"):
                image = self._mirror_traj(self._mirror_traj(tag, wall_b), wall_a)
                d = np.maximum(pairwise_distance(ant, image), 0.05)
                hit_a = self._wall_hit_point(ant, image, wall_a)
                # The far leg re-enters the room after the second bounce;
                # approximate its blockage by the corresponding segment
                # from the single-mirrored geometry.
                single = self._mirror_traj(tag, wall_b)
                hit_b = self._wall_hit_point(hit_a, single, wall_b)
                block = self._leg_blockage(ant, hit_a, bodies) * self._leg_blockage(
                    hit_b, tag, bodies
                )
                amp = self.params.reference_amplitude * rho2 / d
                gain = amp * block * np.exp(-2j * np.pi * d / lam)
                out.append(PathComponent(f"wall2:{wall_a}+{wall_b}", d, gain))
        return out

    def _mirror_traj(self, traj: np.ndarray, wall: str) -> np.ndarray:
        b = self.room.bounds
        out = np.array(traj, dtype=np.float64, copy=True)
        if wall == "left":
            out[:, 0] = 2.0 * b.x0 - out[:, 0]
        elif wall == "right":
            out[:, 0] = 2.0 * b.x1 - out[:, 0]
        elif wall == "bottom":
            out[:, 1] = 2.0 * b.y0 - out[:, 1]
        elif wall == "top":
            out[:, 1] = 2.0 * b.y1 - out[:, 1]
        else:
            raise ValueError(f"unknown wall {wall!r}")
        return out

    def _wall_hit_point(
        self, ant: np.ndarray, image: np.ndarray, wall: str
    ) -> np.ndarray:
        """Where the antenna--image ray crosses the mirroring wall."""
        b = self.room.bounds
        d = image - ant
        if wall in ("left", "right"):
            coord = b.x0 if wall == "left" else b.x1
            axis = 0
        else:
            coord = b.y0 if wall == "bottom" else b.y1
            axis = 1
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(
                np.abs(d[:, axis]) > 1e-12,
                (coord - ant[:, axis]) / d[:, axis],
                0.5,
            )
        t = np.clip(t, 0.0, 1.0)
        return ant + t[:, None] * d

    def _scatter_component(
        self,
        name: str,
        scatter_pos: np.ndarray,
        reflectivity: float,
        ant: np.ndarray,
        tag: np.ndarray,
        lam: np.ndarray,
        bodies: tuple[BodyTrack, ...],
        skip_body: int | None = None,
        skip_scatterer: int | None = None,
    ) -> PathComponent:
        """Path antenna -> scatterer -> tag with per-leg blockage."""
        steps = ant.shape[0]
        pos = as_traj(np.asarray(scatter_pos, dtype=np.float64), steps)
        d1 = np.maximum(pairwise_distance(ant, pos), 0.05)
        d2 = np.maximum(pairwise_distance(pos, tag), 0.05)
        d = d1 + d2
        block = self._leg_blockage(
            ant, pos, bodies, skip_body=skip_body, skip_scatterer=skip_scatterer
        ) * self._leg_blockage(
            pos, tag, bodies, skip_body=skip_body, skip_scatterer=skip_scatterer
        )
        amp = (
            self.params.reference_amplitude
            * reflectivity
            * _SCATTER_CROSS_SECTION
            / (d1 * d2)
        )
        gain = amp * block * np.exp(-2j * np.pi * d / lam)
        return PathComponent(name, d, gain)
