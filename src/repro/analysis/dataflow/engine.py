"""A small forward-dataflow framework over the CFGs of :mod:`.cfg`.

Rule packs subclass :class:`ForwardAnalysis` with a lattice of their
choosing (states are plain dicts mapping variable names to lattice
values) and a per-statement transfer function; :func:`run_forward`
iterates a worklist to fixpoint and returns the state observed *on
entry to* every statement.

The framework requires the lattice to have finite height along every
variable (the packs here use two- and three-point lattices), which
with monotone transfer functions guarantees termination across the
back edges the CFG builder emits for loops.
"""

from __future__ import annotations

import ast
from typing import Mapping

from repro.analysis.dataflow.cfg import CFG

__all__ = ["ForwardAnalysis", "run_forward"]

State = dict[str, object]


class ForwardAnalysis:
    """A forward may-analysis: lattice + transfer function.

    Subclasses override the three methods; ``join`` must be
    commutative/associative and ``transfer`` monotone for the solver
    to terminate.
    """

    def initial(self) -> State:
        """State on entry to the function (usually empty: all clean)."""
        return {}

    def join(self, a: State, b: State) -> State:
        """Merge two predecessor states at a control-flow join.

        The default is a union keeping, per variable, the higher value
        under :meth:`lub`.
        """
        out = dict(a)
        for name, value in b.items():
            out[name] = self.lub(out[name], value) if name in out else value
        return out

    def lub(self, a: object, b: object) -> object:
        """Least upper bound of two lattice values (default: max)."""
        return max(a, b)  # type: ignore[type-var]

    def transfer(self, stmt: ast.stmt, state: State) -> State:
        """Return the state after executing ``stmt`` from ``state``."""
        raise NotImplementedError


def run_forward(
    cfg: CFG, analysis: ForwardAnalysis
) -> Mapping[int, list[State]]:
    """Solve ``analysis`` over ``cfg`` to fixpoint.

    Args:
        cfg: the function's control-flow graph.
        analysis: lattice + transfer function.

    Returns:
        Mapping from block id to the list of states observed on entry
        to each statement of that block (one entry per statement, in
        order).  Callers re-run their transfer logic over these entry
        states to emit findings flow-sensitively.
    """
    preds = cfg.preds()
    block_in: dict[int, State] = {bid: analysis.initial() for bid in cfg.blocks}
    block_out: dict[int, State] = {}

    # Seed every block's out-state so joins over not-yet-visited
    # predecessors behave like bottom.
    for bid, block in cfg.blocks.items():
        state = dict(block_in[bid])
        for stmt in block.stmts:
            state = analysis.transfer(stmt, state)
        block_out[bid] = state

    worklist = list(cfg.blocks)
    iterations = 0
    limit = max(64, 16 * len(cfg.blocks) * (1 + len(cfg.blocks)))
    while worklist:
        iterations += 1
        if iterations > limit:  # pragma: no cover - safety valve
            break
        bid = worklist.pop(0)
        incoming = analysis.initial()
        for p in preds.get(bid, []):
            incoming = analysis.join(incoming, block_out[p])
        if bid != cfg.entry and incoming == block_in[bid] and bid in block_out:
            continue
        block_in[bid] = incoming
        state = dict(incoming)
        for stmt in cfg.blocks[bid].stmts:
            state = analysis.transfer(stmt, state)
        if state != block_out[bid]:
            block_out[bid] = state
            for succ in cfg.blocks[bid].succs:
                if succ not in worklist:
                    worklist.append(succ)

    per_stmt: dict[int, list[State]] = {}
    for bid, block in cfg.blocks.items():
        states: list[State] = []
        state = dict(block_in[bid])
        for stmt in block.stmts:
            states.append(dict(state))
            state = analysis.transfer(stmt, state)
        per_stmt[bid] = states
    return per_stmt
