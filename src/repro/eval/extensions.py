"""Extension studies beyond the paper's figures (its Section VII).

The paper closes with two deployment questions it leaves open: how the
model behaves *across* environments (it expects retraining to be
needed) and how coverage scales with antenna hubs.  These drivers
quantify both on the simulator, plus two engineering ablations the
design section calls out.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import M2AIConfig
from repro.core.pipeline import M2AIPipeline
from repro.data.generator import GenerationConfig, vary
from repro.eval.harness import get_dataset, train_eval_m2ai
from repro.eval.reporting import ExperimentResult, ExperimentRow
from repro.eval.resilience import run_ext_resilience
from repro.eval.serving import run_ext_serving
from repro.eval.robustness import run_ext_robustness


def _training(quick: bool, seed: int) -> M2AIConfig:
    import os

    epochs = 40 if quick else 60
    override = os.environ.get("REPRO_BENCH_EPOCHS")
    if override:
        epochs = min(epochs, int(override))
    return M2AIConfig(epochs=epochs, batch_size=16, seed=seed)


def _cfg(quick: bool, seed: int, **overrides) -> GenerationConfig:
    base = GenerationConfig(
        samples_per_class=8 if quick else 18,
        duration_s=6.0,
        calibration_s=20.0,
        seed=seed,
    )
    return vary(base, **overrides)


def run_ext_transfer(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Cross-environment transfer (Section VII, first discussion).

    Train in the laboratory, evaluate (a) in-domain, (b) zero-shot in
    the hall, (c) in the hall after a short fine-tuning pass on a
    handful of hall samples.  The paper predicts (b) << (a) — "the
    model may need to be re-trained for different settings" — and (c)
    recovering most of the gap.
    """
    from dataclasses import replace

    lab = get_dataset(_cfg(quick, seed, environment="laboratory"))
    hall = get_dataset(_cfg(quick, seed, environment="hall"))
    # Transfer effects only show once the source model is competent;
    # this driver keeps a training floor even under the benchmark
    # suite's trimmed budget (it is only two fits).
    training = _training(quick, seed)
    training = replace(training, epochs=max(training.epochs, 30))

    rng = np.random.default_rng(seed)
    lab_train, lab_test = lab.split(0.2, rng)
    pipeline = M2AIPipeline(training).fit(lab_train, val=lab_test)
    in_domain = pipeline.evaluate(lab_test).accuracy

    hall_adapt, hall_test = hall.split(0.5, np.random.default_rng(seed + 1))
    zero_shot = pipeline.evaluate(hall_test).accuracy
    pipeline.fine_tune(hall_adapt, epochs=15 if quick else 25)
    adapted = pipeline.evaluate(hall_test).accuracy

    return ExperimentResult(
        experiment_id="ext-transfer",
        title="Cross-environment transfer (Section VII)",
        rows=[
            ExperimentRow("lab -> lab (in-domain)", None, in_domain),
            ExperimentRow("lab -> hall (zero-shot)", None, zero_shot),
            ExperimentRow("lab -> hall (fine-tuned)", None, adapted),
        ],
        notes=(
            "Paper's expectation: the trained model is environment-"
            "specific, so zero-shot transfer degrades and a short "
            "retraining pass recovers accuracy. "
            f"Measured: {in_domain:.2f} -> {zero_shot:.2f} -> {adapted:.2f}."
        ),
    )


def run_ext_hub_coverage(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Coverage scaling with antenna hubs (Section VII, second discussion)."""
    del quick, seed  # geometric study; deterministic and fast
    from repro.geometry.room import Rectangle, Room
    from repro.geometry.vec import Vec2
    from repro.hardware.antenna import UniformLinearArray
    from repro.hardware.hub import AntennaHub

    warehouse = Room(bounds=Rectangle(0.0, 0.0, 40.0, 25.0), name="warehouse")
    rng = np.random.default_rng(0)
    points = np.stack(
        [rng.uniform(0, 40.0, 4000), rng.uniform(0, 25.0, 4000)], axis=1
    )

    rows = []
    placements = {
        1: [Vec2(20.0, 0.5)],
        2: [Vec2(10.0, 0.5), Vec2(30.0, 0.5)],
        4: [Vec2(10.0, 0.5), Vec2(30.0, 0.5), Vec2(10.0, 24.5), Vec2(30.0, 24.5)],
    }
    for count, centres in placements.items():
        hub = AntennaHub(
            room=warehouse,
            arrays=tuple(UniformLinearArray(center=c) for c in centres),
        )
        coverage = float(hub.coverage_mask(points, max_range_m=12.0).mean())
        rows.append(
            ExperimentRow(f"{count} array(s)", None, coverage, unit="coverage")
        )
    return ExperimentResult(
        experiment_id="ext-hub",
        title="Area coverage with antenna hubs (Section VII)",
        rows=rows,
        notes=(
            "Paper: a single array covers ~12 m of read range; hubs with "
            "multiple arrays extend coverage.  Fractions are of a "
            "40 m x 25 m warehouse floor."
        ),
    )


def run_ext_augmentation(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Ablation: training-time augmentation on vs off."""
    from dataclasses import replace

    dataset = get_dataset(_cfg(quick, seed))
    base = _training(quick, seed)
    with_aug, _ = train_eval_m2ai(
        dataset, replace(base, augment=True), split_seed=seed
    )
    without_aug, _ = train_eval_m2ai(
        dataset, replace(base, augment=False), split_seed=seed
    )
    return ExperimentResult(
        experiment_id="ext-augment",
        title="Ablation: training-time augmentation",
        rows=[
            ExperimentRow("augmentation on", None, with_aug.accuracy),
            ExperimentRow("augmentation off", None, without_aug.accuracy),
        ],
        notes="Design-section ablation (DESIGN.md section 5/6).",
    )


def run_ext_realtime(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Serving latency: featurise + classify one observation window.

    The paper claims real-time identification; here we measure the
    full per-window cost on CPU — preprocessing (calibration + MUSIC +
    periodogram) and network inference — against the 6 s window it
    must keep up with.
    """
    from repro.data.generator import SyntheticDatasetGenerator
    from repro.eval.harness import get_raw_samples

    cfg = _cfg(quick, seed)
    raw = get_raw_samples(cfg)[:8]
    generator = SyntheticDatasetGenerator(cfg)
    dataset = generator.featurize(raw)
    training = M2AIConfig(epochs=10, batch_size=8, seed=seed)
    pipeline = M2AIPipeline(training).fit(dataset)

    t0 = time.perf_counter()
    for sample in raw:
        generator.featurize([sample])
    featurize_s = (time.perf_counter() - t0) / len(raw)

    single = dataset.subset(np.array([0]))
    t0 = time.perf_counter()
    for _ in range(20):
        pipeline.predict(single)
    infer_s = (time.perf_counter() - t0) / 20.0

    window = cfg.duration_s
    rows = [
        ExperimentRow("featurise one window (s)", None, featurize_s, unit="s"),
        ExperimentRow("network inference (s)", None, infer_s, unit="s"),
        ExperimentRow(
            "real-time margin (window / total)",
            None,
            window / max(featurize_s + infer_s, 1e-9),
            unit="x",
        ),
    ]
    return ExperimentResult(
        experiment_id="ext-realtime",
        title="Serving latency per observation window",
        rows=rows,
        notes=f"Window length {window:.0f} s; margin > 1 means real-time on CPU.",
    )


def run_ext_batching(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Per-dwell scalar DSP loop vs the batched window→MUSIC path.

    The streaming identifier used to run one ``music_pseudospectrum``
    and one ``spatial_periodogram`` call per dwell; it now stacks every
    valid dwell of a window into one batched call.  This driver rebuilds
    both variants on identical simulated dwells, checks the spectra
    agree to ``rtol=1e-12`` (the batching contract), and reports the
    per-dwell cost and speedup of each stage.

    Raises:
        AssertionError: when a batched spectrum deviates from its
            scalar reference beyond ``rtol=1e-12``.
    """
    from repro.dsp.correlation import spatial_covariance_stack
    from repro.dsp.frames import tag_snapshot_set
    from repro.dsp.music import (
        clear_steering_cache,
        music_pseudospectrum,
        music_pseudospectrum_batch,
    )
    from repro.dsp.periodogram import (
        spatial_periodogram,
        spatial_periodogram_batch,
    )
    from repro.eval.harness import get_raw_samples

    raw = get_raw_samples(_cfg(quick, seed))[: 4 if quick else 8]
    z_rows, valid_rows, wavelengths = [], [], []
    spacing = raw[0].log.meta.spacing_m
    for sample in raw:
        psi = sample.psi()
        for snaps in tag_snapshot_set(sample.log, psi, sample.n_frames):
            for f in range(snaps.n_frames):
                if snaps.frame_valid(f):
                    z_rows.append(snaps.z[f])
                    valid_rows.append(snaps.valid[f])
                    wavelengths.append(float(snaps.wavelength_m[f]))
    z = np.stack(z_rows)
    valid = np.stack(valid_rows)
    wl = np.asarray(wavelengths)
    n_dwells = z.shape[0]
    covs = spatial_covariance_stack(z, valid)
    repeat = 3 if quick else 10

    clear_steering_cache()
    t0 = time.perf_counter()
    for _ in range(repeat):
        scalar_music = [
            music_pseudospectrum(covs[w], spacing, wl[w])
            for w in range(n_dwells)
        ]
    music_scalar_ms = (time.perf_counter() - t0) * 1000.0 / repeat

    clear_steering_cache()
    t0 = time.perf_counter()
    for _ in range(repeat):
        batch_music = music_pseudospectrum_batch(covs, spacing, wl)
    music_batch_ms = (time.perf_counter() - t0) * 1000.0 / repeat
    for scalar, batched in zip(scalar_music, batch_music):
        np.testing.assert_allclose(
            batched.spectrum, scalar.spectrum, rtol=1e-12,
            err_msg="batched MUSIC deviates from the scalar path",
        )

    t0 = time.perf_counter()
    for _ in range(repeat):
        scalar_period = np.stack(
            [spatial_periodogram(z[w], valid[w]) for w in range(n_dwells)]
        )
    period_scalar_ms = (time.perf_counter() - t0) * 1000.0 / repeat

    t0 = time.perf_counter()
    for _ in range(repeat):
        batch_period = spatial_periodogram_batch(z, valid)
    period_batch_ms = (time.perf_counter() - t0) * 1000.0 / repeat
    np.testing.assert_allclose(
        batch_period, scalar_period, rtol=1e-12,
        err_msg="batched periodogram deviates from the scalar path",
    )

    rows = [
        ExperimentRow("dwells in batch", None, float(n_dwells), unit="dwells"),
        ExperimentRow("MUSIC scalar loop", None, music_scalar_ms, unit="ms"),
        ExperimentRow("MUSIC batched", None, music_batch_ms, unit="ms"),
        ExperimentRow(
            "MUSIC speedup",
            None,
            music_scalar_ms / max(music_batch_ms, 1e-9),
            unit="x",
        ),
        ExperimentRow("periodogram scalar loop", None, period_scalar_ms, unit="ms"),
        ExperimentRow("periodogram batched", None, period_batch_ms, unit="ms"),
        ExperimentRow(
            "periodogram speedup",
            None,
            period_scalar_ms / max(period_batch_ms, 1e-9),
            unit="x",
        ),
    ]
    return ExperimentResult(
        experiment_id="ext-batching",
        title="Batched vs per-dwell DSP throughput",
        rows=rows,
        notes=(
            f"{n_dwells} real dwells from {len(raw)} simulated windows; "
            "batched spectra verified bit-close (rtol 1e-12) against the "
            "scalar loop before timing is reported."
        ),
    )


EXTENSIONS = {
    "ext-transfer": run_ext_transfer,
    "ext-hub": run_ext_hub_coverage,
    "ext-augment": run_ext_augmentation,
    "ext-realtime": run_ext_realtime,
    "ext-robustness": run_ext_robustness,
    "ext-batching": run_ext_batching,
    "ext-resilience": run_ext_resilience,
    "ext-serving": run_ext_serving,
}
"""Extension studies, keyed by id."""
