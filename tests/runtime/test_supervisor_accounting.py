"""No dequeued window is ever lost — the accounting invariant.

Regression tests for the lost-window bug: a failure *after* dequeue
(in the supervision machinery itself, not just in a guarded stage)
used to drop the window with no decision and no dead letter.  Every
path out of the queue must now end in exactly one decision, with
failures additionally retained as stage-attributed dead letters, so

    decisions emitted + still queued + shed == windows submitted

holds at every point.
"""

from __future__ import annotations

import pytest

from repro.core.streaming import (
    REASON_STAGE_FAILURE,
    StreamingIdentifier,
)
from repro.runtime import PipelineSupervisor

from .conftest import FailingPipeline, StubPipeline, make_log


def _supervisor(pipeline=None, **kwargs) -> PipelineSupervisor:
    identifier = StreamingIdentifier(
        pipeline or StubPipeline(), window_s=4.0, min_reads=8
    )
    return PipelineSupervisor(identifier, **kwargs)


def _accounted(sup, decisions, submitted):
    health = sup.health()
    return len(decisions) + health.queue_depth + health.shed_windows == submitted


class PoisonedLog:
    """A window log whose attributes raise on access."""

    @property
    def n_reads(self):
        raise OSError("backing store went away")

    def __getattr__(self, name):
        raise OSError("backing store went away")


class TestMachineryFailureAfterDequeue:
    def test_process_window_crash_yields_decision_and_dead_letter(self, monkeypatch):
        sup = _supervisor()
        submitted = sup.submit_stream(make_log(n=900, duration_s=8.0))
        assert submitted == 2

        def boom(item):
            raise MemoryError("supervisor machinery died")

        monkeypatch.setattr(sup, "_process_window", boom)
        decisions = sup.drain()

        assert len(decisions) == submitted
        assert all(d.abstained for d in decisions)
        assert all(d.reason == REASON_STAGE_FAILURE for d in decisions)
        letters = sup.dead_letters()
        assert len(letters) == submitted
        assert all(dl.stage == "supervisor" for dl in letters)
        assert all("MemoryError" in dl.error for dl in letters)
        assert _accounted(sup, decisions, submitted)

    def test_poisoned_log_attribute_access_cannot_lose_window(self):
        sup = _supervisor()
        sup.submit(PoisonedLog(), t_start_s=0.0)
        decisions = sup.drain()

        assert len(decisions) == 1
        assert decisions[0].abstained
        assert decisions[0].reason == REASON_STAGE_FAILURE
        assert decisions[0].n_reads == 0  # unreadable log reads as 0
        assert len(sup.dead_letters()) == 1
        assert _accounted(sup, decisions, 1)

    def test_mixed_healthy_and_poisoned_windows_all_accounted(self):
        sup = _supervisor()
        submitted = sup.submit_stream(make_log(n=900, duration_s=8.0))
        sup.submit(PoisonedLog(), t_start_s=8.0)
        submitted += 1
        decisions = sup.drain()

        assert len(decisions) == submitted
        assert _accounted(sup, decisions, submitted)
        poisoned = [d for d in decisions if d.reason == REASON_STAGE_FAILURE]
        healthy = [d for d in decisions if d.reason != REASON_STAGE_FAILURE]
        assert len(poisoned) == 1
        assert len(healthy) == submitted - 1
        assert all(not d.abstained for d in healthy)


class TestSplitPhaseAccounting:
    def test_every_popped_window_finishes_exactly_once(self):
        sup = _supervisor()
        submitted = sup.submit_stream(make_log(n=1800, duration_s=16.0))
        decisions = []
        while True:
            item = sup.pop_window()
            if item is None:
                break
            prep = sup.begin_window(item)
            if prep.decision is not None:
                decisions.append(sup.finish_window(prep))
                continue
            probas = sup.identifier.predict_prepared([prep.sample])
            decisions.append(sup.finish_window(prep, proba=probas[0]))
        assert len(decisions) == submitted
        assert sup.health().windows_total == submitted
        assert _accounted(sup, decisions, submitted)

    def test_begin_window_failure_resolves_not_raises(self):
        sup = _supervisor(pipeline=FailingPipeline())
        sup.submit(PoisonedLog(), t_start_s=0.0)
        item = sup.pop_window()
        prep = sup.begin_window(item)
        assert prep.decision is not None  # degraded, not raised
        decision = sup.finish_window(prep)
        assert decision.abstained
        assert decision.reason == REASON_STAGE_FAILURE
        assert len(sup.dead_letters()) == 1

    def test_finish_window_with_error_degrades_under_lane_attribution(self):
        sup = _supervisor()
        sup.submit_stream(make_log(n=900, duration_s=8.0))
        item = sup.pop_window()
        prep = sup.begin_window(item)
        assert prep.decision is None
        decision = sup.finish_window(prep, error=RuntimeError("batch blew up"))
        assert decision.abstained
        assert decision.reason == REASON_STAGE_FAILURE
        letters = sup.dead_letters()
        assert len(letters) == 1
        assert "batch blew up" in letters[0].error

    def test_finish_window_without_proba_or_error_still_resolves(self):
        sup = _supervisor()
        sup.submit_stream(make_log(n=900, duration_s=8.0))
        prep = sup.begin_window(sup.pop_window())
        assert prep.decision is None
        decision = sup.finish_window(prep)  # caller forgot the proba
        assert decision.abstained
        assert decision.reason == REASON_STAGE_FAILURE

    def test_drop_window_dead_letters_and_counts_shed(self):
        sup = _supervisor()
        submitted = sup.submit_stream(make_log(n=900, duration_s=8.0))
        assert submitted >= 1
        item = sup.pop_window()
        sup.drop_window(item, stage="serving.shed")
        health = sup.health()
        assert health.shed_windows == 1
        letters = sup.dead_letters()
        assert letters[-1].stage == "serving.shed"
        decisions = sup.drain()
        assert len(decisions) + 1 == submitted  # the dropped one is shed
        assert _accounted(sup, decisions, submitted)


@pytest.mark.parametrize("n_poisoned", [1, 3])
def test_sum_invariant_holds_under_partial_drain(n_poisoned):
    sup = _supervisor()
    submitted = sup.submit_stream(make_log(n=1800, duration_s=16.0))
    for k in range(n_poisoned):
        sup.submit(PoisonedLog(), t_start_s=100.0 + 4.0 * k)
    submitted += n_poisoned

    # Drain only part of the queue through the split-phase API.
    decisions = []
    for _ in range(2):
        item = sup.pop_window()
        prep = sup.begin_window(item)
        if prep.decision is not None:
            decisions.append(sup.finish_window(prep))
        else:
            probas = sup.identifier.predict_prepared([prep.sample])
            decisions.append(sup.finish_window(prep, proba=probas[0]))
    assert _accounted(sup, decisions, submitted)

    decisions += sup.drain()
    assert len(decisions) == submitted
    assert _accounted(sup, decisions, submitted)
