"""Evaluation metrics: accuracy, confusion matrix, per-class P/R/F1.

The paper's headline metric is accuracy (their Section VI footnote
defines it as ``(Tp+Tn)/(Tp+Tn+Fp+Fn)``, the standard multi-class
accuracy); Table I is a column-normalised confusion matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact matches.

    Raises:
        ValueError: on length mismatch or empty input.
    """
    t, p = np.asarray(y_true), np.asarray(y_pred)
    if t.shape != p.shape:
        raise ValueError("y_true and y_pred must align")
    if t.size == 0:
        raise ValueError("empty evaluation set")
    return float(np.mean(t == p))


@dataclass
class ConfusionMatrix:
    """Confusion counts plus the class ordering.

    Attributes:
        labels: class labels indexing both axes.
        counts: ``counts[i, j]`` = samples of true class j predicted as
            class i (prediction rows / actual columns, Table I's
            layout).
    """

    labels: np.ndarray
    counts: np.ndarray

    def column_normalized(self) -> np.ndarray:
        """Each column scaled to sum to 1 (Table I's percentages)."""
        sums = self.counts.sum(axis=0, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            out = np.where(sums > 0, self.counts / sums, 0.0)
        return out

    def diagonal_accuracy(self) -> np.ndarray:
        """Per-class recall — the Table I diagonal."""
        return np.diag(self.column_normalized())

    def render(self, max_labels: int | None = None) -> str:
        """Plain-text rendering in Table I's style."""
        norm = self.column_normalized()
        labels = [str(label) for label in self.labels]
        if max_labels is not None:
            labels = labels[:max_labels]
        width = max(6, max(len(label) for label in labels) + 1)
        header = " " * width + "".join(f"{label:>{width}}" for label in labels)
        rows = [header]
        for i, row_label in enumerate(labels):
            cells = "".join(
                f"{norm[i, j] * 100:>{width - 1}.0f}%" for j in range(len(labels))
            )
            rows.append(f"{row_label:>{width}}" + cells)
        return "\n".join(rows)


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, labels: np.ndarray | None = None
) -> ConfusionMatrix:
    """Build the (prediction x actual) confusion matrix."""
    t, p = np.asarray(y_true), np.asarray(y_pred)
    if t.shape != p.shape:
        raise ValueError("y_true and y_pred must align")
    if labels is None:
        labels = np.array(sorted(set(t.tolist()) | set(p.tolist())))
    index = {label: i for i, label in enumerate(labels.tolist())}
    counts = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for actual, predicted in zip(t.tolist(), p.tolist()):
        counts[index[predicted], index[actual]] += 1
    return ConfusionMatrix(labels=np.asarray(labels), counts=counts)


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, labels: np.ndarray | None = None
) -> dict[str, np.ndarray]:
    """Per-class precision, recall and F1.

    Returns:
        Dict with keys ``labels``, ``precision``, ``recall``, ``f1``.
    """
    cm = confusion_matrix(y_true, y_pred, labels)
    counts = cm.counts.astype(np.float64)
    tp = np.diag(counts)
    predicted = counts.sum(axis=1)
    actual = counts.sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        precision = np.where(predicted > 0, tp / predicted, 0.0)
        recall = np.where(actual > 0, tp / actual, 0.0)
        f1 = np.where(
            precision + recall > 0,
            2 * precision * recall / (precision + recall),
            0.0,
        )
    return {
        "labels": cm.labels,
        "precision": precision,
        "recall": recall,
        "f1": f1,
    }
