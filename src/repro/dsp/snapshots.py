"""Snapshot assembly: read log -> per-tag array snapshots.

The R420 time-multiplexes its four ports (25 ms each), so one *round*
of port switching (100 ms) yields one spatial snapshot — a complex
value per antenna — and one 400 ms channel dwell yields four snapshots
at a single carrier frequency.  Grouping per dwell keeps every spatial
correlation matrix single-frequency, which is what makes MUSIC steering
exact; successive dwells become successive *spectrum frames* for the
learning engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.link import rssi_dbm_to_amplitude
from repro.channel.params import ChannelParams
from repro.hardware.llrp import ReadLog


@dataclass
class TagSnapshots:
    """Per-dwell spatial snapshots of one tag.

    Attributes:
        z: ``(F, K, N)`` complex snapshots — F dwells (frames), K
            rounds per dwell, N antennas.  Invalid entries are 0.
        valid: ``(F, K, N)`` bool mask of entries actually observed.
        wavelength_m: ``(F,)`` carrier wavelength of each dwell.
        frame_time_s: ``(F,)`` dwell start times.
    """

    z: np.ndarray
    valid: np.ndarray
    wavelength_m: np.ndarray
    frame_time_s: np.ndarray

    @property
    def n_frames(self) -> int:
        """Number of frames."""
        return int(self.z.shape[0])

    @property
    def n_antennas(self) -> int:
        """Number of antenna elements."""
        return int(self.z.shape[2])

    def frame_valid(self, f: int, min_antennas: int = 2) -> bool:
        """True when frame ``f`` observed at least ``min_antennas`` ports."""
        seen = self.valid[f].any(axis=0)
        return int(seen.sum()) >= min_antennas


def build_snapshots(
    log: ReadLog,
    psi: np.ndarray,
    tag: int,
    n_frames: int | None = None,
    channel_params: ChannelParams | None = None,
) -> TagSnapshots:
    """Assemble snapshots for one tag.

    Each read becomes a complex sample ``a * exp(1j * psi)`` where the
    amplitude comes from RSSI and ``psi`` is the (calibrated) doubled
    phase.  Reads are binned by (dwell, round-within-dwell, antenna);
    duplicate bins keep the last read.

    Args:
        log: the full session read log.
        psi: ``(R,)`` doubled phases aligned with ``log`` (calibrated
            or raw, the caller chooses — this is the Fig. 10 toggle).
        tag: tag index to extract.
        n_frames: force the number of frames (defaults to the span of
            the log).
        channel_params: link-budget constants for the RSSI inverse
            mapping.

    Returns:
        The tag's :class:`TagSnapshots`.
    """
    if len(psi) != log.n_reads:
        raise ValueError("psi must align with the log")
    params = channel_params or ChannelParams()
    meta = log.meta
    n_ant = meta.n_antennas
    round_s = meta.slot_s * n_ant
    rounds_per_dwell = max(1, int(round(meta.dwell_s / round_s)))

    mask = log.tag_index == tag
    t = log.timestamp_s[mask]
    antennas = log.antenna[mask]
    psi_tag = psi[mask]
    amps = rssi_dbm_to_amplitude(log.rssi_dbm[mask], params)
    freqs = log.frequency_hz[mask]

    # Snap the origin onto the dwell grid: the first *read* may fall
    # mid-dwell (earlier reads lost to harvest failures), but frames
    # must align with hop boundaries or a frame would mix two carriers.
    min_t = float(log.timestamp_s.min()) if log.n_reads else 0.0
    t0 = np.floor(min_t / meta.dwell_s) * meta.dwell_s
    dwell_idx = np.floor((t - t0) / meta.dwell_s).astype(int)
    round_idx = np.floor((t - t0) / round_s).astype(int)
    k_idx = round_idx - dwell_idx * rounds_per_dwell
    k_idx = np.clip(k_idx, 0, rounds_per_dwell - 1)

    if n_frames is None:
        span = log.timestamp_s.max() - t0 if log.n_reads else 0.0
        n_frames = max(1, int(np.ceil((span + 1e-9) / meta.dwell_s)))

    z = np.zeros((n_frames, rounds_per_dwell, n_ant), dtype=np.complex128)
    valid = np.zeros((n_frames, rounds_per_dwell, n_ant), dtype=bool)
    wavelength = np.full(n_frames, np.nan)

    in_range = (dwell_idx >= 0) & (dwell_idx < n_frames)
    from repro.channel.params import SPEED_OF_LIGHT

    f_sel = dwell_idx[in_range]
    values = (amps * np.exp(1j * psi_tag))[in_range]
    # Duplicate (dwell, round, antenna) bins keep the *last* read in
    # log order, so pick each flat bin's final occurrence explicitly
    # (fancy-index assignment leaves duplicate resolution unspecified).
    flat = (f_sel * rounds_per_dwell + k_idx[in_range]) * n_ant + antennas[in_range]
    bins, first_in_reversed = np.unique(flat[::-1], return_index=True)
    last = flat.size - 1 - first_in_reversed
    z.reshape(-1)[bins] = values[last]
    valid.reshape(-1)[bins] = True
    frames_seen, first_in_reversed = np.unique(f_sel[::-1], return_index=True)
    wavelength[frames_seen] = (
        SPEED_OF_LIGHT / freqs[in_range][f_sel.size - 1 - first_in_reversed]
    )

    # Frames never observed (tag missed for a whole dwell) get the
    # band-centre wavelength so downstream steering stays finite.
    centre = float(np.nanmean(wavelength)) if np.isfinite(wavelength).any() else 0.328
    wavelength = np.where(np.isnan(wavelength), centre, wavelength)

    frame_time = t0 + np.arange(n_frames) * meta.dwell_s
    return TagSnapshots(
        z=z, valid=valid, wavelength_m=wavelength, frame_time_s=frame_time
    )
