"""The overhead contract: disabled instrumentation costs <2% on identify.

Rather than an A/B wall-clock comparison (noisy on shared CI runners),
the test is deterministic: count how many spans one ``identify`` call
actually opens, measure the disabled-path cost of a single span and a
single counter-facade call in a tight loop, and check that the implied
total is under 2% of the measured identify wall time.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.core.streaming import StreamingIdentifier
from repro.obs.metrics import counter
from repro.obs.profile import _WINDOW_S, build_workload
from repro.obs.tracing import span


@pytest.fixture(scope="module")
def workload():
    """Quick-profile workload: trained pipeline + 2-window stream."""
    pipeline, calibrator, stream, _cal, _windows, _dataset = build_workload(
        quick=True, seed=11
    )
    return pipeline, calibrator, stream


def _identify_wall_s(identifier, stream, repeats: int = 3) -> float:
    """Median identify wall time with instrumentation disabled."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        identifier.identify(stream)
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]


def test_enabled_identify_produces_span_tree_and_metrics(workload):
    pipeline, calibrator, stream = workload
    identifier = StreamingIdentifier(
        pipeline, calibrator=calibrator, window_s=_WINDOW_S
    )
    obs.enable()
    identifier.identify(stream)
    roots = obs.get_collector().snapshot()
    names = {s.name for s in obs.walk_spans(roots)}
    assert "streaming.identify" in names
    assert "streaming.window" in names
    assert "nn.forward" in names
    metrics = {m.name: m for m in obs.get_registry().collect()}
    assert metrics["streaming.windows_total"].value == 2.0
    assert "streaming.window.latency_ms" in metrics


def test_disabled_overhead_under_two_percent(workload):
    pipeline, calibrator, stream = workload
    identifier = StreamingIdentifier(
        pipeline, calibrator=calibrator, window_s=_WINDOW_S
    )

    # How many spans does one identify call actually open?
    obs.enable()
    obs.reset()
    identifier.identify(stream)
    n_spans = sum(1 for _ in obs.walk_spans(obs.get_collector().drain()))
    obs.disable()
    obs.reset()
    assert n_spans > 0

    # Disabled-path unit costs, amortised over a tight loop.
    n_iter = 50_000
    t0 = time.perf_counter()
    for _ in range(n_iter):
        with span("overhead.probe"):
            pass
    span_cost_s = (time.perf_counter() - t0) / n_iter
    t0 = time.perf_counter()
    for _ in range(n_iter):
        counter("overhead.probe_total").inc()
    counter_cost_s = (time.perf_counter() - t0) / n_iter
    assert obs.get_collector().snapshot() == []  # probes were no-ops

    identify_s = _identify_wall_s(identifier, stream)

    # Counter facade calls are far rarer than spans (per window/decision,
    # not per frame); 2 per span is a generous ceiling.
    implied_overhead_s = n_spans * (span_cost_s + 2.0 * counter_cost_s)
    ratio = implied_overhead_s / identify_s
    assert ratio < 0.02, (
        f"disabled obs overhead {ratio:.2%} >= 2% "
        f"({n_spans} spans, span={span_cost_s * 1e9:.0f}ns, "
        f"counter={counter_cost_s * 1e9:.0f}ns, identify={identify_s * 1e3:.1f}ms)"
    )
