"""The repo scripts' plumbing (no heavy experiments)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


def load_script(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "scripts" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def load_runner():
    return load_script("run_experiments")


class TestRunnerScript:
    def test_unknown_only_id_exits_with_valid_ids(self, capsys):
        runner = load_runner()
        with pytest.raises(SystemExit) as exc:
            runner.parse_args(["--only", "bogus"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "fig09" in err  # the valid ids are listed, not a KeyError

    def test_only_filters_and_full_selects_mode(self):
        runner = load_runner()
        args = runner.parse_args(["--only", "fig09,fig02", "--full", "--seed", "3"])
        assert args.wanted == ["fig09", "fig02"]
        assert args.full and args.seed == 3

    def test_defaults_cover_whole_registry(self):
        from repro.experiments import default_registry

        runner = load_runner()
        args = runner.parse_args([])
        assert args.wanted == list(default_registry())
        assert args.workers == 1
        assert not args.force

    def test_header_mentions_regeneration(self):
        from repro.experiments import EXPERIMENTS_HEADER

        assert "run_experiments.py" in EXPERIMENTS_HEADER
        assert "paper vs measured" in EXPERIMENTS_HEADER

    def test_main_runs_a_toy_registry_end_to_end(
        self, tmp_path, monkeypatch, capsys
    ):
        from tests.experiments.toyreg import factory

        runner = load_runner()
        monkeypatch.setattr(runner, "default_registry", factory)
        out = tmp_path / "EXPERIMENTS.md"
        store = tmp_path / "store"
        argv = ["--only", "toy", "--out", str(out), "--store", str(store)]

        assert runner.main(argv) == 0
        text = out.read_text()
        assert "toy experiment" in text
        assert "mode: quick, seed: 0" in text

        # Second run serves the cell from the durable store.
        assert runner.main(argv) == 0
        assert "[skip]" in capsys.readouterr().out


class TestApiDocsGenerator:
    def test_committed_api_md_is_current(self, capsys):
        """The same invariant CI's `gen_api_docs.py --check` enforces."""
        gen = load_script("gen_api_docs")
        assert gen.main(["--check"]) == 0, "docs/API.md is stale"

    def test_every_public_module_is_documented(self):
        gen = load_script("gen_api_docs")
        text = (REPO / "docs" / "API.md").read_text()
        modules = gen.iter_public_modules()
        assert "repro.obs" in modules
        for name in modules:
            assert f"## `{name}`" in text

    def test_generator_is_deterministic(self):
        gen = load_script("gen_api_docs")
        assert gen.generate() == gen.generate()

    def test_check_flags_stale_output(self, tmp_path, monkeypatch, capsys):
        gen = load_script("gen_api_docs")
        stale = tmp_path / "API.md"
        stale.write_text("# out of date\n")
        monkeypatch.setattr(gen, "OUT_PATH", stale)
        assert gen.main(["--check"]) == 1
        assert "stale" in capsys.readouterr().err
