"""Module plumbing: parameter discovery, state snapshots, training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv1d,
    Dense,
    Module,
    Parameter,
    ReLU,
    Sequential,
    softmax_cross_entropy,
)

RNG = np.random.default_rng(1)


class Nested(Module):
    """Module with parameters at several nesting levels."""

    def __init__(self):
        self.direct = Parameter(np.zeros(3), name="direct")
        self.child = Dense(2, 2, RNG, name="child")
        self.children_list = [Dense(2, 2, RNG, name="a"), Dense(2, 2, RNG, name="b")]

    def forward(self, x, training=False):
        return x


class TestParameterDiscovery:
    def test_finds_all_levels(self):
        module = Nested()
        params = module.parameters()
        # 1 direct + 2 per Dense x 3 Dense layers
        assert len(params) == 7

    def test_deterministic_order(self):
        a = Nested().parameters()
        b = Nested().parameters()
        assert [p.shape for p in a] == [p.shape for p in b]

    def test_zero_grad(self):
        module = Nested()
        for p in module.parameters():
            p.grad += 1.0
        module.zero_grad()
        for p in module.parameters():
            assert (p.grad == 0).all()

    def test_n_parameters(self):
        dense = Dense(10, 5, RNG)
        assert dense.n_parameters() == 10 * 5 + 5


class TestState:
    def test_roundtrip(self):
        module = Sequential(Dense(3, 4, RNG), ReLU(), Dense(4, 2, RNG))
        x = RNG.normal(size=(5, 3))
        before = module(x)
        state = module.get_state()
        for p in module.parameters():
            p.value += 1.0
        assert not np.allclose(module(x), before)
        module.set_state(state)
        np.testing.assert_allclose(module(x), before)

    def test_count_mismatch_rejected(self):
        module = Dense(3, 4, RNG)
        with pytest.raises(ValueError):
            module.set_state([np.zeros((3, 4))])

    def test_shape_mismatch_rejected(self):
        module = Dense(3, 4, RNG)
        with pytest.raises(ValueError):
            module.set_state([np.zeros((4, 3)), np.zeros(4)])


class TestSequentialTraining:
    def test_learns_linearly_separable(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 6))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        net = Sequential(Dense(6, 12, rng, relu_init=True), ReLU(), Dense(12, 2, rng))
        opt = Adam(net.parameters(), lr=0.01)
        for _ in range(100):
            logits = net(x, training=True)
            _loss, grad = softmax_cross_entropy(logits, y)
            net.zero_grad()
            net.backward(grad)
            opt.step()
        assert float((net(x).argmax(1) == y).mean()) > 0.97

    def test_learns_nonlinear_xor(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(400, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
        net = Sequential(Dense(2, 16, rng, relu_init=True), ReLU(), Dense(16, 2, rng))
        opt = Adam(net.parameters(), lr=0.02)
        for _ in range(300):
            logits = net(x, training=True)
            _loss, grad = softmax_cross_entropy(logits, y)
            net.zero_grad()
            net.backward(grad)
            opt.step()
        assert float((net(x).argmax(1) == y).mean()) > 0.95

    def test_conv_sequence_trains(self):
        rng = np.random.default_rng(0)
        # Detect whether a bump sits in the first or second half.
        n, length = 200, 16
        x = np.zeros((n, 1, length))
        y = np.zeros(n, dtype=int)
        for i in range(n):
            pos = rng.integers(0, length - 4)
            x[i, 0, pos : pos + 4] = 1.0
            y[i] = int(pos >= length // 2 - 2)
        x += rng.normal(0, 0.1, x.shape)
        from repro.nn import Flatten

        net = Sequential(
            Conv1d(1, 4, 3, rng, stride=1, padding=1),
            ReLU(),
            Flatten(),
            Dense(4 * length, 2, rng),
        )
        opt = Adam(net.parameters(), lr=0.01)
        for _ in range(80):
            logits = net(x, training=True)
            _loss, grad = softmax_cross_entropy(logits, y)
            net.zero_grad()
            net.backward(grad)
            opt.step()
        assert float((net(x).argmax(1) == y).mean()) > 0.95


class TestParameterDtype:
    """The dtype is an explicit, validated argument (no silent upcast)."""

    def test_default_is_float64(self):
        from repro.nn.module import DEFAULT_DTYPE

        p = Parameter(np.zeros(3, dtype="float32"))
        assert p.value.dtype == DEFAULT_DTYPE == np.float64
        assert p.grad.dtype == DEFAULT_DTYPE

    def test_explicit_narrow_dtype_honoured(self):
        p = Parameter(np.zeros(3), dtype=np.float32)
        assert p.value.dtype == np.float32
        assert p.grad.dtype == np.float32

    def test_non_float_dtype_rejected(self):
        with pytest.raises(TypeError):
            Parameter(np.zeros(3), dtype=np.int64)
        with pytest.raises(TypeError):
            Parameter(np.zeros(3), dtype=np.complex128)
