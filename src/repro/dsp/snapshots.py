"""Snapshot assembly: read log -> per-tag array snapshots.

The R420 time-multiplexes its four ports (25 ms each), so one *round*
of port switching (100 ms) yields one spatial snapshot — a complex
value per antenna — and one 400 ms channel dwell yields four snapshots
at a single carrier frequency.  Grouping per dwell keeps every spatial
correlation matrix single-frequency, which is what makes MUSIC steering
exact; successive dwells become successive *spectrum frames* for the
learning engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.link import rssi_dbm_to_amplitude
from repro.channel.params import ChannelParams
from repro.hardware.llrp import ReadLog


@dataclass
class TagSnapshots:
    """Per-dwell spatial snapshots of one tag.

    Attributes:
        z: ``(F, K, N)`` complex snapshots — F dwells (frames), K
            rounds per dwell, N antennas.  Invalid entries are 0.
        valid: ``(F, K, N)`` bool mask of entries actually observed.
        wavelength_m: ``(F,)`` carrier wavelength of each dwell.
        frame_time_s: ``(F,)`` dwell start times.
    """

    z: np.ndarray
    valid: np.ndarray
    wavelength_m: np.ndarray
    frame_time_s: np.ndarray

    @property
    def n_frames(self) -> int:
        """Number of frames."""
        return int(self.z.shape[0])

    @property
    def n_antennas(self) -> int:
        """Number of antenna elements."""
        return int(self.z.shape[2])

    def frame_valid(self, f: int, min_antennas: int = 2) -> bool:
        """True when frame ``f`` observed at least ``min_antennas`` ports."""
        seen = self.valid[f].any(axis=0)
        return int(seen.sum()) >= min_antennas


def build_snapshots(
    log: ReadLog,
    psi: np.ndarray,
    tag: int,
    n_frames: int | None = None,
    channel_params: ChannelParams | None = None,
) -> TagSnapshots:
    """Assemble snapshots for one tag.

    Each read becomes a complex sample ``a * exp(1j * psi)`` where the
    amplitude comes from RSSI and ``psi`` is the (calibrated) doubled
    phase.  Reads are binned by (dwell, round-within-dwell, antenna);
    duplicate bins keep the last read.

    Args:
        log: the full session read log.
        psi: ``(R,)`` doubled phases aligned with ``log`` (calibrated
            or raw, the caller chooses — this is the Fig. 10 toggle).
        tag: tag index to extract.
        n_frames: force the number of frames (defaults to the span of
            the log).
        channel_params: link-budget constants for the RSSI inverse
            mapping.

    Returns:
        The tag's :class:`TagSnapshots`.
    """
    if len(psi) != log.n_reads:
        raise ValueError("psi must align with the log")
    params = channel_params or ChannelParams()
    meta = log.meta
    n_ant = meta.n_antennas
    round_s = meta.slot_s * n_ant
    rounds_per_dwell = max(1, int(round(meta.dwell_s / round_s)))

    mask = log.tag_index == tag
    t = log.timestamp_s[mask]
    antennas = log.antenna[mask]
    psi_tag = psi[mask]
    amps = rssi_dbm_to_amplitude(log.rssi_dbm[mask], params)
    freqs = log.frequency_hz[mask]

    # Snap the origin onto the dwell grid: the first *read* may fall
    # mid-dwell (earlier reads lost to harvest failures), but frames
    # must align with hop boundaries or a frame would mix two carriers.
    min_t = float(log.timestamp_s.min()) if log.n_reads else 0.0
    t0 = np.floor(min_t / meta.dwell_s) * meta.dwell_s
    dwell_idx = np.floor((t - t0) / meta.dwell_s).astype(int)
    round_idx = np.floor((t - t0) / round_s).astype(int)
    k_idx = round_idx - dwell_idx * rounds_per_dwell
    k_idx = np.clip(k_idx, 0, rounds_per_dwell - 1)

    if n_frames is None:
        span = log.timestamp_s.max() - t0 if log.n_reads else 0.0
        n_frames = max(1, int(np.ceil((span + 1e-9) / meta.dwell_s)))

    z = np.zeros((n_frames, rounds_per_dwell, n_ant), dtype=np.complex128)
    valid = np.zeros((n_frames, rounds_per_dwell, n_ant), dtype=bool)
    wavelength = np.full(n_frames, np.nan)

    in_range = (dwell_idx >= 0) & (dwell_idx < n_frames)
    from repro.channel.params import SPEED_OF_LIGHT

    f_sel = dwell_idx[in_range]
    values = (amps * np.exp(1j * psi_tag))[in_range]
    # Duplicate (dwell, round, antenna) bins keep the *last* read in
    # log order, so pick each flat bin's final occurrence explicitly
    # (fancy-index assignment leaves duplicate resolution unspecified).
    flat = (f_sel * rounds_per_dwell + k_idx[in_range]) * n_ant + antennas[in_range]
    bins, first_in_reversed = np.unique(flat[::-1], return_index=True)
    last = flat.size - 1 - first_in_reversed
    z.reshape(-1)[bins] = values[last]
    valid.reshape(-1)[bins] = True
    frames_seen, first_in_reversed = np.unique(f_sel[::-1], return_index=True)
    wavelength[frames_seen] = (
        SPEED_OF_LIGHT / freqs[in_range][f_sel.size - 1 - first_in_reversed]
    )

    # Frames never observed (tag missed for a whole dwell) get the
    # band-centre wavelength so downstream steering stays finite.
    centre = float(np.nanmean(wavelength)) if np.isfinite(wavelength).any() else 0.328
    wavelength = np.where(np.isnan(wavelength), centre, wavelength)

    frame_time = t0 + np.arange(n_frames) * meta.dwell_s
    return TagSnapshots(
        z=z, valid=valid, wavelength_m=wavelength, frame_time_s=frame_time
    )


def build_snapshots_all(
    log: ReadLog,
    psi: np.ndarray,
    n_frames: int | None = None,
    channel_params: ChannelParams | None = None,
) -> list[TagSnapshots]:
    """Assemble snapshots for *every* tag in one pass over the log.

    Identical output to calling :func:`build_snapshots` per tag — the
    tag index simply becomes the leading component of the flat bin
    index, so binning, duplicate resolution and wavelength assignment
    run once over the whole log instead of once per tag.  This is the
    per-window cost that stays after a fleet shard pools its DSP
    batches, so it must not scale with the tag count in Python.

    Returns:
        One :class:`TagSnapshots` per tag, indexed by tag.
    """
    if len(psi) != log.n_reads:
        raise ValueError("psi must align with the log")
    params = channel_params or ChannelParams()
    meta = log.meta
    n_ant = meta.n_antennas
    n_tags = log.n_tags
    round_s = meta.slot_s * n_ant
    rounds_per_dwell = max(1, int(round(meta.dwell_s / round_s)))

    t = log.timestamp_s
    amps = rssi_dbm_to_amplitude(log.rssi_dbm, params)

    min_t = float(t.min()) if log.n_reads else 0.0
    t0 = np.floor(min_t / meta.dwell_s) * meta.dwell_s
    dwell_idx = np.floor((t - t0) / meta.dwell_s).astype(int)
    round_idx = np.floor((t - t0) / round_s).astype(int)
    k_idx = round_idx - dwell_idx * rounds_per_dwell
    k_idx = np.clip(k_idx, 0, rounds_per_dwell - 1)

    if n_frames is None:
        span = t.max() - t0 if log.n_reads else 0.0
        n_frames = max(1, int(np.ceil((span + 1e-9) / meta.dwell_s)))

    z = np.zeros((n_tags, n_frames, rounds_per_dwell, n_ant), dtype=np.complex128)
    valid = np.zeros((n_tags, n_frames, rounds_per_dwell, n_ant), dtype=bool)
    wavelength = np.full((n_tags, n_frames), np.nan)

    in_range = (dwell_idx >= 0) & (dwell_idx < n_frames)
    from repro.channel.params import SPEED_OF_LIGHT

    tags_sel = log.tag_index[in_range]
    f_sel = dwell_idx[in_range]
    values = (amps * np.exp(1j * psi))[in_range]
    # Duplicate (tag, dwell, round, antenna) bins keep the *last* read
    # in log order, exactly like the per-tag builder.
    flat = (
        (tags_sel * n_frames + f_sel) * rounds_per_dwell + k_idx[in_range]
    ) * n_ant + log.antenna[in_range]
    bins, first_in_reversed = np.unique(flat[::-1], return_index=True)
    last = flat.size - 1 - first_in_reversed
    z.reshape(-1)[bins] = values[last]
    valid.reshape(-1)[bins] = True
    tf = tags_sel * n_frames + f_sel
    tf_seen, first_in_reversed = np.unique(tf[::-1], return_index=True)
    wavelength.reshape(-1)[tf_seen] = (
        SPEED_OF_LIGHT / log.frequency_hz[in_range][tf.size - 1 - first_in_reversed]
    )

    # Frames never observed get the tag's band-centre wavelength so
    # downstream steering stays finite (0.328 m with no reads at all).
    finite = np.isfinite(wavelength)
    counts = finite.sum(axis=1)
    sums = np.where(finite, wavelength, 0.0).sum(axis=1)
    centre = np.where(counts > 0, sums / np.maximum(counts, 1), 0.328)
    wavelength = np.where(np.isnan(wavelength), centre[:, None], wavelength)

    frame_time = t0 + np.arange(n_frames) * meta.dwell_s
    return [
        TagSnapshots(
            z=z[k],
            valid=valid[k],
            wavelength_m=wavelength[k],
            frame_time_s=frame_time,
        )
        for k in range(n_tags)
    ]


def build_snapshots_many(
    logs: list[ReadLog],
    psis: list[np.ndarray],
    n_frames: int,
    channel_params: ChannelParams | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Bin *many* windows' reads into snapshots in one pass.

    The fleet-shard extension of :func:`build_snapshots_all`: the
    window index joins the tag index at the front of the flat bin, so
    W windows cost one concatenate + one ``np.unique`` instead of W
    binning passes.  Every window must share the same array geometry
    (tag count, antennas, dwell/slot timing) and frame count — the
    caller groups by exactly that key.  Slicing the outputs at one
    window index reproduces :func:`build_snapshots_all` on that
    window's ``(log, psi)`` bit for bit.

    Args:
        logs: one read log per window.
        psis: doubled phases aligned with each log.
        n_frames: common frame count across the windows.

    Returns:
        ``(z, valid, wavelength_m, frame_time_s)`` stacked over
        windows: ``z`` and ``valid`` are ``(W, n_tags, F, K, N)``,
        ``wavelength_m`` is ``(W, n_tags, F)`` and ``frame_time_s``
        is ``(W, F)``.
    """
    params = channel_params or ChannelParams()
    meta = logs[0].meta
    n_ant = meta.n_antennas
    n_tags = logs[0].n_tags
    round_s = meta.slot_s * n_ant
    rounds_per_dwell = max(1, int(round(meta.dwell_s / round_s)))
    n_windows = len(logs)

    counts = np.array([log.n_reads for log in logs])
    w_idx = np.repeat(np.arange(n_windows), counts)
    t = np.concatenate([log.timestamp_s for log in logs])
    antennas = np.concatenate([log.antenna for log in logs])
    tags = np.concatenate([log.tag_index for log in logs])
    freqs = np.concatenate([log.frequency_hz for log in logs])
    psi = np.concatenate(list(psis))
    amps = rssi_dbm_to_amplitude(
        np.concatenate([log.rssi_dbm for log in logs]), params
    )
    if len(psi) != t.size:
        raise ValueError("each psi must align with its log")

    # Per-window dwell-grid origin, exactly as the per-window builder.
    t0_w = np.array(
        [
            np.floor(float(log.timestamp_s.min()) / meta.dwell_s) * meta.dwell_s
            if log.n_reads
            else 0.0
            for log in logs
        ]
    )
    rel = t - t0_w[w_idx]
    dwell_idx = np.floor(rel / meta.dwell_s).astype(int)
    round_idx = np.floor(rel / round_s).astype(int)
    k_idx = np.clip(round_idx - dwell_idx * rounds_per_dwell, 0, rounds_per_dwell - 1)

    shape = (n_windows, n_tags, n_frames, rounds_per_dwell, n_ant)
    z = np.zeros(shape, dtype=np.complex128)
    valid = np.zeros(shape, dtype=bool)
    wavelength = np.full((n_windows, n_tags, n_frames), np.nan)

    in_range = (dwell_idx >= 0) & (dwell_idx < n_frames)
    from repro.channel.params import SPEED_OF_LIGHT

    values = (amps * np.exp(1j * psi))[in_range]
    wt = w_idx[in_range] * n_tags + tags[in_range]
    f_sel = dwell_idx[in_range]
    # Duplicate bins keep the last read in log order; windows never
    # collide (the window index leads the flat bin).
    flat = (
        (wt * n_frames + f_sel) * rounds_per_dwell + k_idx[in_range]
    ) * n_ant + antennas[in_range]
    bins, first_in_reversed = np.unique(flat[::-1], return_index=True)
    last = flat.size - 1 - first_in_reversed
    z.reshape(-1)[bins] = values[last]
    valid.reshape(-1)[bins] = True
    tf = wt * n_frames + f_sel
    tf_seen, first_in_reversed = np.unique(tf[::-1], return_index=True)
    wavelength.reshape(-1)[tf_seen] = (
        SPEED_OF_LIGHT / freqs[in_range][tf.size - 1 - first_in_reversed]
    )

    finite = np.isfinite(wavelength)
    n_finite = finite.sum(axis=2)
    sums = np.where(finite, wavelength, 0.0).sum(axis=2)
    centre = np.where(n_finite > 0, sums / np.maximum(n_finite, 1), 0.328)
    wavelength = np.where(np.isnan(wavelength), centre[:, :, None], wavelength)

    frame_time = t0_w[:, None] + np.arange(n_frames) * meta.dwell_s
    return z, valid, wavelength, frame_time
