"""Configuration of the M2AI learning engine."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class M2AIConfig:
    """Architecture and training hyper-parameters (Section IV / VI-A).

    Attributes:
        conv_channels: output channels of the two pseudospectrum
            convolution stages (CONV-E stack).
        conv_kernels: kernel widths of the two stages.
        branch_dim: per-channel encoder output width.
        merge_dim: fused per-frame feature width (the FC merge layer).
        lstm_hidden: memory cells per LSTM layer (paper: 32).
        lstm_layers: stacked LSTM count (paper: 2).
        dropout: dropout rate on the merged features.
        epochs: training epochs (paper: 100 on real data; simulated
            datasets converge much faster).
        batch_size: minibatch size.
        learning_rate: optimiser step size.
        optimizer: ``"sgd"`` (the paper's choice) or ``"adam"``.
        momentum: SGD momentum.
        clip_norm: global gradient-norm ceiling (the paper scales the
            gradient norm to fight exploding LSTM gradients).
        weight_decay: L2 regularisation.
        augment: apply training-time augmentation (angle shift, time
            roll, feature noise) to each minibatch.
        warmup_frames: recurrent modes ignore the first frames in the
            loss and at prediction time — the LSTM has accumulated no
            temporal context yet, so those logits are noise.
        seed: weight-init and shuffling seed.
    """

    conv_channels: tuple[int, int] = (16, 24)
    conv_kernels: tuple[int, int] = (7, 5)
    branch_dim: int = 64
    merge_dim: int = 48
    lstm_hidden: int = 32
    lstm_layers: int = 2
    dropout: float = 0.2
    epochs: int = 40
    batch_size: int = 16
    learning_rate: float = 0.001
    optimizer: str = "adam"
    momentum: float = 0.9
    clip_norm: float = 5.0
    weight_decay: float = 1e-4
    augment: bool = True
    warmup_frames: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError("optimizer must be 'sgd' or 'adam'")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if self.lstm_layers < 1:
            raise ValueError("need at least one LSTM layer")
