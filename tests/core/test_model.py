"""The M2AI network: shapes, modes, gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import M2AIConfig, M2AINet
from repro.nn import numerical_gradient, softmax_cross_entropy

SHAPES = {"pseudo": (3, 180), "period": (3, 4)}
SMALL_CFG = M2AIConfig(
    conv_channels=(4, 6),
    branch_dim=8,
    merge_dim=10,
    lstm_hidden=6,
    lstm_layers=2,
    dropout=0.0,
    epochs=1,
)


def make_inputs(batch=2, frames=4, rng=None):
    rng = rng or np.random.default_rng(0)
    return {
        name: rng.normal(size=(batch, frames, n, d))
        for name, (n, d) in SHAPES.items()
    }


class TestForwardShapes:
    @pytest.mark.parametrize("mode,frames_out", [("cnn_lstm", 4), ("lstm", 4), ("cnn", 1)])
    def test_logit_shape(self, mode, frames_out):
        net = M2AINet(SHAPES, n_classes=5, cfg=SMALL_CFG, mode=mode)
        logits = net.forward(make_inputs())
        assert logits.shape == (2, frames_out, 5)

    def test_predict_logits_shape(self):
        net = M2AINet(SHAPES, n_classes=5, cfg=SMALL_CFG)
        assert net.predict_logits(make_inputs()).shape == (2, 5)

    def test_missing_channel_rejected(self):
        net = M2AINet(SHAPES, n_classes=5, cfg=SMALL_CFG)
        with pytest.raises(ValueError):
            net.forward({"pseudo": make_inputs()["pseudo"]})

    def test_inconsistent_batch_rejected(self):
        net = M2AINet(SHAPES, n_classes=5, cfg=SMALL_CFG)
        inputs = make_inputs()
        inputs["period"] = inputs["period"][:1]
        with pytest.raises(ValueError):
            net.forward(inputs)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            M2AINet(SHAPES, n_classes=5, cfg=SMALL_CFG, mode="transformer")

    def test_empty_channels_rejected(self):
        with pytest.raises(ValueError):
            M2AINet({}, n_classes=5, cfg=SMALL_CFG)


class TestBranchSelection:
    def test_wide_channel_gets_conv(self):
        net = M2AINet(SHAPES, n_classes=5, cfg=SMALL_CFG, mode="cnn_lstm")
        from repro.core.model import ConvBranch, DenseBranch

        by_name = dict(zip(net.channel_names, net.branches))
        assert isinstance(by_name["pseudo"], ConvBranch)
        assert isinstance(by_name["period"], DenseBranch)

    def test_lstm_mode_uses_linear_branches(self):
        net = M2AINet(SHAPES, n_classes=5, cfg=SMALL_CFG, mode="lstm")
        from repro.core.model import LinearBranch

        assert all(isinstance(b, LinearBranch) for b in net.branches)


class TestGradients:
    @pytest.mark.parametrize("mode", ["cnn_lstm", "cnn", "lstm"])
    def test_input_gradient_matches_numerical(self, mode):
        tiny_shapes = {"pseudo": (2, 40), "period": (2, 4)}
        cfg = M2AIConfig(
            conv_channels=(2, 3),
            branch_dim=4,
            merge_dim=5,
            lstm_hidden=3,
            lstm_layers=1,
            dropout=0.0,
            epochs=1,
            warmup_frames=0,
        )
        net = M2AINet(tiny_shapes, n_classes=3, cfg=cfg, mode=mode)
        rng = np.random.default_rng(1)
        inputs = {
            name: rng.normal(size=(2, 3, n, d))
            for name, (n, d) in tiny_shapes.items()
        }
        labels = np.array([0, 2])

        logits = net.forward(inputs)
        frames_out = logits.shape[1]
        frame_labels = np.repeat(labels[:, None], frames_out, axis=1)
        _loss, dlogits = softmax_cross_entropy(logits, frame_labels)
        net.zero_grad()
        grads = net.backward(dlogits)

        def loss_for(channel):
            def f(arr):
                probe = dict(inputs)
                probe[channel] = arr
                out = net.forward(probe)
                fl = np.repeat(labels[:, None], out.shape[1], axis=1)
                return softmax_cross_entropy(out, fl)[0]

            return f

        for channel in tiny_shapes:
            numeric = numerical_gradient(loss_for(channel), inputs[channel].copy(), eps=1e-5)
            denom = max(np.linalg.norm(numeric), 1e-12)
            rel = np.linalg.norm(grads[channel] - numeric) / denom
            assert rel < 1e-4, f"{mode}/{channel}: {rel}"

    def test_parameter_count_reasonable(self):
        net = M2AINet(SHAPES, n_classes=12, cfg=SMALL_CFG)
        assert 0 < net.n_parameters() < 500_000

    def test_backward_before_forward_raises(self):
        net = M2AINet(SHAPES, n_classes=5, cfg=SMALL_CFG)
        with pytest.raises(RuntimeError):
            net.backward(np.zeros((2, 4, 5)))


class TestWarmup:
    def test_prediction_skips_warmup_frames(self):
        cfg = M2AIConfig(
            conv_channels=(2, 3), branch_dim=4, merge_dim=5, lstm_hidden=3,
            lstm_layers=1, dropout=0.0, epochs=1, warmup_frames=2,
        )
        net = M2AINet({"period": (2, 4)}, n_classes=3, cfg=cfg, mode="cnn_lstm")
        inputs = {"period": np.random.default_rng(0).normal(size=(1, 5, 2, 4))}
        logits = net.forward(inputs)
        expected = logits[:, 2:, :].mean(axis=1)
        np.testing.assert_allclose(net.predict_logits(inputs), expected)
