"""Ablation bench: training-time augmentation on vs off."""

from repro.eval import run_ext_augmentation


def test_ext_augmentation_ablation(run_experiment):
    result = run_experiment(run_ext_augmentation)
    measured = result.measured_by_name()
    # Both settings must train to something; the comparison itself is
    # the artifact (recorded in EXPERIMENTS.md).
    assert min(measured.values()) > 2.0 / 12.0
