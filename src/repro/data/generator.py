"""Synthetic dataset generation: the paper's data collection, simulated.

Each sample reproduces the full experimental protocol of Section VI-A:

1. volunteers with randomised physique take positions 3-6 m from the
   reader in the chosen room;
2. a stationary *calibration bootstrap* inventory is collected (the
   paper's ~10 s; we default to one full 20 s hop cycle so every
   channel is observed — shorter bootstraps exercise the calibrator's
   linear-fit extrapolation);
3. the scripted activity is performed and inventoried;
4. the read log is calibrated and featurised into spectrum frames.

Keeping the *raw* logs around lets one simulation feed every
preprocessing ablation (Fig. 10 and Fig. 16) without re-rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.dataset import ActivityDataset
from repro.dsp.calibration import PhaseCalibrator, uncalibrated
from repro.dsp.features import M2AIFeaturizer
from repro.dsp.frames import FeatureFrames
from repro.geometry.room import Room, make_hall, make_laboratory
from repro.geometry.vec import Vec2
from repro.hardware.antenna import DEFAULT_SPACING_M, UniformLinearArray
from repro.hardware.llrp import ReadLog
from repro.hardware.reader import Reader, ReaderConfig
from repro.hardware.scene import Scene, TagTrack
from repro.channel.model import BodyTrack
from repro.motion.scenarios import SCENARIO_LABELS, SCENARIOS, build_instance

ENVIRONMENTS = ("laboratory", "hall")


@dataclass(frozen=True)
class GenerationConfig:
    """Knobs of one dataset generation run.

    Attributes:
        environment: ``"laboratory"`` (high multipath) or ``"hall"``.
        scenario_labels: activity classes to render.
        samples_per_class: repetitions per class.
        n_persons: people per scene (None = each scenario's default, 2).
        tags_per_person: 1-3 tags at hand/arm/shoulder.
        n_antennas: reader array size (2-4 on a real R420).
        duration_s: activity observation window.
        calibration_s: stationary bootstrap length.
        distance_m: fixed reader-person distance, or None for the
            paper's random 3-6 m placement.
        seed: master randomness seed.
    """

    environment: str = "laboratory"
    scenario_labels: tuple[str, ...] = SCENARIO_LABELS
    samples_per_class: int = 10
    n_persons: int | None = None
    tags_per_person: int = 3
    n_antennas: int = 4
    duration_s: float = 8.0
    calibration_s: float = 20.0
    distance_m: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.environment not in ENVIRONMENTS:
            raise ValueError(f"environment must be one of {ENVIRONMENTS}")
        unknown = [label for label in self.scenario_labels if label not in SCENARIOS]
        if unknown:
            raise ValueError(f"unknown scenario labels: {unknown}")
        if self.samples_per_class < 1:
            raise ValueError("samples_per_class must be >= 1")
        if not 2 <= self.n_antennas:
            raise ValueError("need at least 2 antennas for AoA")


@dataclass
class RawSample:
    """One simulated recording, before featurisation."""

    label: str
    log: ReadLog
    calibration_log: ReadLog
    n_frames: int
    calibrator: PhaseCalibrator | None = field(default=None, repr=False)

    def psi(self, use_calibration: bool = True) -> np.ndarray:
        """Doubled phases, calibrated (default) or raw (Fig. 10)."""
        if not use_calibration:
            return uncalibrated(self.log)
        if self.calibrator is None:
            self.calibrator = PhaseCalibrator.fit(self.calibration_log)
        return self.calibrator.calibrate(self.log)


class SyntheticDatasetGenerator:
    """Renders activity scenarios into labelled datasets."""

    def __init__(self, config: GenerationConfig | None = None) -> None:
        self.config = config or GenerationConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def make_room(self) -> Room:
        """The configured environment."""
        if self.config.environment == "laboratory":
            return make_laboratory()
        return make_hall()

    def make_array(self, room: Room) -> UniformLinearArray:
        """The reader array, wall-mounted at 1.25 m like the paper."""
        centre = Vec2(room.bounds.width / 2.0, room.bounds.y0 + 0.3)
        return UniformLinearArray(
            center=centre,
            n_elements=self.config.n_antennas,
            spacing=DEFAULT_SPACING_M,
        )

    def generate_raw(self) -> list[RawSample]:
        """Simulate every (class, repetition) recording."""
        cfg = self.config
        room = self.make_room()
        array = self.make_array(room)
        samples: list[RawSample] = []
        for label in cfg.scenario_labels:
            scenario = SCENARIOS[label]
            for _rep in range(cfg.samples_per_class):
                seed = int(self._rng.integers(2**31))
                samples.append(
                    self._render_one(scenario, room, array, seed)
                )
        return samples

    def featurize(
        self,
        raw_samples: list[RawSample],
        featurizer=None,
        use_calibration: bool = True,
    ) -> ActivityDataset:
        """Turn raw recordings into an :class:`ActivityDataset`."""
        featurizer = featurizer or M2AIFeaturizer()
        frames: list[FeatureFrames] = []
        for raw in raw_samples:
            psi = raw.psi(use_calibration)
            frames.append(
                featurizer.transform(
                    raw.log, psi, n_frames=raw.n_frames, label=raw.label
                )
            )
        return ActivityDataset(samples=frames)

    def generate(self, featurizer=None, use_calibration: bool = True) -> ActivityDataset:
        """Convenience: :meth:`generate_raw` then :meth:`featurize`."""
        return self.featurize(self.generate_raw(), featurizer, use_calibration)

    # ------------------------------------------------------------------

    def _render_one(self, scenario, room: Room, array, seed: int) -> RawSample:
        cfg = self.config
        reader = Reader(ReaderConfig(array=array), room, seed=seed)
        rng = np.random.default_rng(seed ^ 0x5EED)
        instance = build_instance(
            scenario,
            array,
            room,
            duration_s=cfg.duration_s,
            slot_s=reader.config.slot_s,
            rng=rng,
            n_persons=cfg.n_persons,
            tags_per_person=cfg.tags_per_person,
            distance_m=cfg.distance_m,
        )
        cal_scene = self._calibration_scene(
            instance.scene, int(round(cfg.calibration_s / reader.config.slot_s))
        )
        cal_log = reader.inventory(cal_scene, cfg.calibration_s)
        log = reader.inventory(instance.scene, cfg.duration_s)
        n_frames = int(round(cfg.duration_s / reader.hopper.dwell_s))
        return RawSample(
            label=scenario.label,
            log=log,
            calibration_log=cal_log,
            n_frames=max(n_frames, 1),
        )

    @staticmethod
    def _calibration_scene(scene: Scene, n_slots: int) -> Scene:
        """Everyone holds still at their starting pose."""
        tracks = []
        for track in scene.tag_tracks:
            pos = track.positions
            start = pos[0] if pos.ndim == 2 else pos
            tracks.append(
                TagTrack(tag=track.tag, positions=np.asarray(start), carrier=track.carrier)
            )
        bodies = tuple(
            BodyTrack(
                positions=np.tile(body.positions[0], (n_slots, 1)),
                radius=body.radius,
            )
            for body in scene.bodies
        )
        return Scene(tag_tracks=tuple(tracks), bodies=bodies)


def vary(config: GenerationConfig, **overrides) -> GenerationConfig:
    """A copy of ``config`` with fields replaced (sweep helper)."""
    return replace(config, **overrides)
