"""Retry loop: deterministic backoff, exhaustion, deadline budgets."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.runtime import (
    RetryExhaustedError,
    RetryPolicy,
    backoff_delays,
    call_with_retry,
    retry,
)


class Flaky:
    """Raises ``exc`` for the first ``n_failures`` calls, then returns."""

    def __init__(self, n_failures: int, exc: type[Exception] = ConnectionError):
        self.n_failures = n_failures
        self.exc = exc
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.calls <= self.n_failures:
            raise self.exc(f"boom #{self.calls}")
        return "ok"


class TestPolicyValidation:
    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)


class TestBackoffSchedule:
    def test_sleeps_replay_the_published_schedule(self):
        # Same policy + same seed must reproduce backoff_delays exactly:
        # this is the determinism contract the bench relies on.
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.05, max_delay_s=0.3, jitter_seed=7
        )
        expected = backoff_delays(policy, np.random.default_rng(7))
        slept: list[float] = []
        result = call_with_retry(
            Flaky(4), policy=policy, stage="t", sleep=slept.append
        )
        assert result == "ok"
        assert slept == expected[:4]

    def test_delays_respect_the_cap(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay_s=1.0, max_delay_s=0.25, jitter_seed=3
        )
        delays = backoff_delays(policy, np.random.default_rng(3))
        assert len(delays) == 7
        assert all(0.0 <= d <= 0.25 for d in delays)

    def test_zero_base_delay_never_sleeps(self):
        slept: list[float] = []
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0, max_delay_s=0.0)
        call_with_retry(Flaky(3), policy=policy, sleep=slept.append)
        assert slept == []


class TestOutcomes:
    def test_first_attempt_success_is_untouched(self):
        fn = Flaky(0)
        assert call_with_retry(fn, policy=RetryPolicy(), sleep=lambda _: None) == "ok"
        assert fn.calls == 1

    def test_exhaustion_raises_with_attribution(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        fn = Flaky(99)
        with pytest.raises(RetryExhaustedError) as err:
            call_with_retry(fn, policy=policy, stage="ingest", sleep=lambda _: None)
        assert err.value.stage == "ingest"
        assert err.value.attempts == 3
        assert isinstance(err.value.__cause__, ConnectionError)
        assert fn.calls == 3

    def test_non_retryable_exception_propagates_immediately(self):
        fn = Flaky(99, exc=ValueError)
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        with pytest.raises(ValueError):
            call_with_retry(fn, policy=policy, sleep=lambda _: None)
        assert fn.calls == 1

    def test_custom_retry_on_narrows_the_net(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.0, retry_on=(TimeoutError,)
        )
        with pytest.raises(ConnectionError):
            call_with_retry(Flaky(2), policy=policy, sleep=lambda _: None)

    def test_args_and_kwargs_are_forwarded(self):
        def add(a, b, *, c=0):
            return a + b + c

        assert (
            call_with_retry(add, 1, 2, policy=RetryPolicy(), c=3, sleep=lambda _: None)
            == 6
        )


class TestDeadlineBudget:
    def test_budget_exhaustion_beats_max_attempts(self):
        # Each failed attempt advances the fake clock by 1s; a 2.5s
        # budget therefore allows 3 attempts even with max_attempts=10.
        t = {"now": 0.0}

        def clock() -> float:
            return t["now"]

        def failing() -> None:
            t["now"] += 1.0
            raise ConnectionError("slow boom")

        policy = RetryPolicy(max_attempts=10, base_delay_s=0.0, deadline_s=2.5)
        with pytest.raises(RetryExhaustedError) as err:
            call_with_retry(
                failing, policy=policy, sleep=lambda _: None, clock=clock
            )
        assert err.value.attempts == 3
        assert err.value.elapsed_s == pytest.approx(3.0)

    def test_sleep_is_clipped_to_remaining_budget(self):
        t = {"now": 0.0}

        def clock() -> float:
            return t["now"]

        def failing() -> None:
            t["now"] += 0.4
            raise ConnectionError("boom")

        slept: list[float] = []
        policy = RetryPolicy(
            max_attempts=3,
            base_delay_s=10.0,
            max_delay_s=10.0,
            deadline_s=0.5,
            jitter_seed=0,
        )
        with pytest.raises(RetryExhaustedError):
            call_with_retry(
                failing, policy=policy, sleep=slept.append, clock=clock
            )
        assert all(d <= 0.5 for d in slept)


class TestMetrics:
    def test_recovery_and_attempts_are_counted(self):
        obs.enable()
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        call_with_retry(Flaky(2), policy=policy, stage="s1", sleep=lambda _: None)
        metrics = {
            (m.name, dict(m.labels).get("stage")): m.value
            for m in obs.get_registry().collect()
        }
        assert metrics[("runtime.retry.attempts_total", "s1")] == 2.0
        assert metrics[("runtime.retry.recovered_total", "s1")] == 1.0

    def test_exhaustion_is_counted(self):
        obs.enable()
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)
        with pytest.raises(RetryExhaustedError):
            call_with_retry(
                Flaky(9), policy=policy, stage="s2", sleep=lambda _: None
            )
        metrics = {
            (m.name, dict(m.labels).get("stage")): m.value
            for m in obs.get_registry().collect()
        }
        assert metrics[("runtime.retry.exhausted_total", "s2")] == 1.0


class TestDecorator:
    def test_decorated_function_retries_and_keeps_identity(self):
        state = {"calls": 0}

        @retry(RetryPolicy(max_attempts=3, base_delay_s=0.0), stage="deco")
        def fetch() -> str:
            """Fetch something."""
            state["calls"] += 1
            if state["calls"] < 3:
                raise TimeoutError("not yet")
            return "done"

        assert fetch() == "done"
        assert state["calls"] == 3
        assert fetch.__name__ == "fetch"
        assert fetch.__doc__ == "Fetch something."
