"""RPR012: flow-aware narrow-float discipline with inference_mode scopes.

The token-level RPR006 banned every ``float32`` spelling outright,
which made the ROADMAP's inference-only float32 serve path
unexpressible.  RPR012 supersedes it with a *dataflow* rule:

* a narrow-float **origin** (``np.float32(...)``, ``.astype(np.float32)``,
  ``dtype="float32"``, ``np.dtype("float32")``, or a narrow dtype
  *variable* flowing into a ``dtype=`` argument) is only legal inside a
  ``with inference_mode():`` block (:func:`repro.nn.module.inference_mode`);
* a narrow value created *inside* such a scope must not **escape** it:
  reading the variable after the block exits is flagged at the read;
* a function whose sanctioned narrow value leaves through ``return``
  is summarised as narrow-returning, and every resolved **call site**
  outside an inference scope is flagged — escape analysis across call
  edges, not just within one function.

Casting back (``.astype(np.float64)``, ``np.asarray(x, dtype=DEFAULT_DTYPE)``)
cleanses a value, which is exactly the cast-once serve recipe: enter
the scope, narrow, infer, widen (or emit non-array decisions), leave.

Approximations (documented, deliberately on the quiet side): values
are tracked through local names, arithmetic, subscripts, tuples and
resolved project calls — not through attributes, containers mutated
elsewhere, or unresolved calls.  Narrow dtype *strings* count only in
dtype positions, so ban tables and docs never false-positive.
"""

from __future__ import annotations

import ast
from types import SimpleNamespace
from typing import Iterator

from repro.analysis.dataflow.cfg import build_cfg
from repro.analysis.dataflow.engine import ForwardAnalysis, run_forward
from repro.analysis.dataflow.project import ModuleInfo, Project, dotted_name
from repro.analysis.rules import (
    Finding,
    ProjectContext,
    ProjectRule,
    register_project_rule,
)

__all__ = ["DtypeFlowRule"]

CLEAN = 0
SANCTIONED = 1  # narrow, born inside an inference_mode scope
TAINTED = 2  # narrow, born outside any inference_mode scope

_NARROW_ATTRS = frozenset(
    {"float32", "float16", "half", "single", "csingle", "complex64"}
)
_NARROW_STRINGS = frozenset({"float32", "float16", "complex64"})
_WIDE_ATTRS = frozenset({"float64", "double", "complex128", "cdouble", "longdouble"})
_WIDE_STRINGS = frozenset({"float64", "complex128"})
_WIDE_NAMES = frozenset({"DEFAULT_DTYPE", "DEFAULT_COMPLEX_DTYPE", "float", "complex"})


def _collect_sanctioned(tree: ast.Module) -> set[int]:
    """ids of every statement lexically inside a ``with inference_mode():``."""
    sanctioned: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if not any(_is_inference_item(item) for item in node.items):
            continue
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.stmt):
                    sanctioned.add(id(sub))
    return sanctioned


def _is_inference_item(item: ast.withitem) -> bool:
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
    dotted = dotted_name(expr)
    return dotted is not None and dotted.split(".")[-1] == "inference_mode"


def _dtype_const_kind(node: ast.AST) -> str | None:
    """'narrow'/'wide' for a literal dtype expression, None if unknown."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in _NARROW_STRINGS:
            return "narrow"
        if node.value in _WIDE_STRINGS:
            return "wide"
        return None
    dotted = dotted_name(node)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if parts[0] in ("np", "numpy") and len(parts) >= 2:
        if parts[-1] in _NARROW_ATTRS:
            return "narrow"
        if parts[-1] in _WIDE_ATTRS:
            return "wide"
    if parts[-1] in _WIDE_NAMES:
        return "wide"
    return None


def _frames(tree: ast.Module) -> list[tuple[str, object]]:
    """Every analysis frame: the module body, each class body, each def.

    Nested defs become their own frames; the enclosing frame treats
    them as opaque statements.
    """
    frames: list[tuple[str, object]] = [("<module>", SimpleNamespace(body=tree.body))]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            frames.append((node.name, node))
        elif isinstance(node, ast.ClassDef):
            frames.append(
                (node.name, SimpleNamespace(body=[
                    s
                    for s in node.body
                    if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                ]))
            )
    return frames


def _stmt_value_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expression roots a statement *evaluates* (headers only)."""
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.AugAssign):
        return [stmt.value]
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Assert):
        return [stmt.test] + ([stmt.msg] if stmt.msg else [])
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [
        child
        for child in ast.iter_child_nodes(stmt)
        if isinstance(child, ast.expr)
    ]


class _Emit:
    """Finding sink used only during the final (post-fixpoint) pass."""

    def __init__(self) -> None:
        self.events: list[tuple[ast.AST, str]] = []

    def add(self, node: ast.AST, message: str) -> None:
        self.events.append((node, message))


class _NarrowFlow(ForwardAnalysis):
    """Forward may-analysis: which locals hold narrow-float values."""

    def __init__(
        self,
        module: ModuleInfo,
        project: Project,
        sanctioned: set[int],
        narrow_fns: set[str],
    ) -> None:
        self.module = module
        self.project = project
        self.sanctioned = sanctioned
        self.narrow_fns = narrow_fns

    # -- expression evaluation -------------------------------------------

    def eval_expr(
        self,
        expr: ast.expr,
        state: dict[str, object],
        sanc: bool,
        emit: _Emit | None,
    ) -> int:
        new_narrow = SANCTIONED if sanc else TAINTED
        if isinstance(expr, ast.Name):
            return int(state.get(expr.id, CLEAN))  # type: ignore[arg-type]
        if isinstance(expr, ast.Attribute):
            # A bare ``np.float32`` attribute is a narrow *value* (it
            # taints whatever it flows into) but not a reported origin:
            # ban tables and doc strings may name it freely.
            return new_narrow if _dtype_const_kind(expr) == "narrow" else CLEAN
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state, sanc, emit)
        if isinstance(expr, ast.BinOp):
            return max(
                self.eval_expr(expr.left, state, sanc, emit),
                self.eval_expr(expr.right, state, sanc, emit),
            )
        if isinstance(expr, ast.UnaryOp):
            return self.eval_expr(expr.operand, state, sanc, emit)
        if isinstance(expr, ast.Subscript):
            return self.eval_expr(expr.value, state, sanc, emit)
        if isinstance(expr, ast.IfExp):
            return max(
                self.eval_expr(expr.body, state, sanc, emit),
                self.eval_expr(expr.orelse, state, sanc, emit),
            )
        if isinstance(expr, ast.BoolOp):
            return max(self.eval_expr(v, state, sanc, emit) for v in expr.values)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            levels = [self.eval_expr(e, state, sanc, emit) for e in expr.elts]
            return max(levels) if levels else CLEAN
        if isinstance(expr, ast.Starred):
            return self.eval_expr(expr.value, state, sanc, emit)
        if isinstance(expr, ast.NamedExpr):
            lvl = self.eval_expr(expr.value, state, sanc, emit)
            if isinstance(expr.target, ast.Name):
                state[expr.target.id] = lvl
            return lvl
        return CLEAN

    def _eval_call(
        self,
        call: ast.Call,
        state: dict[str, object],
        sanc: bool,
        emit: _Emit | None,
    ) -> int:
        new_narrow = SANCTIONED if sanc else TAINTED
        func = call.func
        dotted = dotted_name(func)
        parts = dotted.split(".") if dotted else []

        # .astype(dtype): origin when narrow, cleanser when wide.
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            dtype_arg = call.args[0] if call.args else _kwarg(call, "dtype")
            if dtype_arg is not None:
                kind = _dtype_const_kind(dtype_arg)
                if kind == "narrow":
                    if emit is not None and not sanc:
                        emit.add(
                            call,
                            f"narrow-float cast .astype({ast.unparse(dtype_arg)}) "
                            "outside inference_mode()",
                        )
                    return new_narrow
                if kind == "wide":
                    return CLEAN
                lvl = self.eval_expr(dtype_arg, state, sanc, emit)
                if lvl > CLEAN:
                    if emit is not None and not sanc:
                        emit.add(
                            call,
                            "narrow dtype variable flows into .astype() "
                            "outside inference_mode()",
                        )
                    return new_narrow
            return self.eval_expr(func.value, state, sanc, emit)

        # np.float32(x) constructors / np.dtype("float32").
        if parts and parts[0] in ("np", "numpy"):
            if parts[-1] in _NARROW_ATTRS:
                if emit is not None and not sanc:
                    emit.add(
                        call, f"narrow-float constructor {dotted}() outside inference_mode()"
                    )
                return new_narrow
            if parts[-1] == "dtype" and call.args:
                kind = _dtype_const_kind(call.args[0])
                if kind == "narrow":
                    if emit is not None and not sanc:
                        emit.add(
                            call,
                            f"narrow dtype np.dtype({ast.unparse(call.args[0])}) "
                            "outside inference_mode()",
                        )
                    return new_narrow
                if kind == "wide":
                    return CLEAN
                lvl = self.eval_expr(call.args[0], state, sanc, emit)
                if lvl > CLEAN:
                    if emit is not None and not sanc:
                        emit.add(
                            call,
                            "narrow dtype variable flows into np.dtype() "
                            "outside inference_mode()",
                        )
                    return new_narrow

        # dtype= keyword on any call (array constructors mostly).
        dtype_kw = _kwarg(call, "dtype")
        if dtype_kw is not None:
            kind = _dtype_const_kind(dtype_kw)
            if kind == "narrow":
                if emit is not None and not sanc:
                    emit.add(
                        call,
                        f"narrow dtype {ast.unparse(dtype_kw)} passed as dtype= "
                        "outside inference_mode()",
                    )
                return new_narrow
            if kind == "wide":
                return CLEAN
            lvl = self.eval_expr(dtype_kw, state, sanc, emit)
            if lvl > CLEAN:
                if emit is not None and not sanc:
                    emit.add(
                        call,
                        "narrow dtype variable flows into dtype= "
                        "outside inference_mode()",
                    )
                return new_narrow

        # Resolved project calls: interprocedural narrow returns.
        resolved = self.project.resolve_function(self.module, func)
        if resolved is not None and resolved.qualname in self.narrow_fns:
            if emit is not None and not sanc:
                emit.add(
                    call,
                    f"call to {resolved.qualname}() returns float32 data "
                    "outside inference_mode()",
                )
            return new_narrow
        return CLEAN

    # -- transfer ---------------------------------------------------------

    def transfer(self, stmt: ast.stmt, state: dict[str, object]) -> dict[str, object]:
        state = dict(state)
        self.apply(stmt, state, emit=None)
        return state

    def apply(
        self, stmt: ast.stmt, state: dict[str, object], emit: _Emit | None
    ) -> None:
        """Evaluate ``stmt``'s headers against ``state``, mutating it."""
        sanc = id(stmt) in self.sanctioned
        if isinstance(stmt, ast.Assign):
            lvl = self.eval_expr(stmt.value, state, sanc, emit)
            for target in stmt.targets:
                self._bind(target, lvl, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            lvl = self.eval_expr(stmt.value, state, sanc, emit)
            self._bind(stmt.target, lvl, state)
        elif isinstance(stmt, ast.AugAssign):
            lvl = self.eval_expr(stmt.value, state, sanc, emit)
            if isinstance(stmt.target, ast.Name):
                old = int(state.get(stmt.target.id, CLEAN))  # type: ignore[arg-type]
                state[stmt.target.id] = max(old, lvl)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            lvl = self.eval_expr(stmt.iter, state, sanc, emit)
            self._bind(stmt.target, lvl, state)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
        else:
            for root in _stmt_value_exprs(stmt):
                self.eval_expr(root, state, sanc, emit)

    def _bind(self, target: ast.expr, lvl: int, state: dict[str, object]) -> None:
        if isinstance(target, ast.Name):
            state[target.id] = lvl
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, lvl, state)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, lvl, state)


def _kwarg(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


@register_project_rule
class DtypeFlowRule(ProjectRule):
    """RPR012: narrow floats may exist only inside inference_mode scopes.

    See the module docstring for the full semantics: origins, scope
    escapes, and narrow-returning call edges are each flagged at the
    precise site the float64 contract breaks.
    """

    code = "RPR012"
    name = "dtype-flow"
    description = (
        "flow-aware float64 discipline: narrow-float origins, scope escapes, "
        "and narrow-returning calls outside an explicit inference_mode() scope"
    )
    hint = (
        "wrap the narrow path in `with inference_mode():` (repro.nn) and cast "
        "back to float64 before the value leaves the scope, or use "
        "DEFAULT_DTYPE"
    )

    _MAX_SUMMARY_ROUNDS = 8

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        """Yield findings across the whole project."""
        project = ctx.project
        sanctioned = {
            name: _collect_sanctioned(info.tree)
            for name, info in project.modules.items()
        }

        narrow_fns: set[str] = set()
        for _ in range(self._MAX_SUMMARY_ROUNDS):
            updated = self._summaries(project, sanctioned, narrow_fns)
            if updated == narrow_fns:
                break
            narrow_fns = updated

        for name, info in project.modules.items():
            yield from self._emit_module(info, project, sanctioned[name], narrow_fns)

    # -- summary pass -----------------------------------------------------

    def _summaries(
        self,
        project: Project,
        sanctioned: dict[str, set[int]],
        narrow_fns: set[str],
    ) -> set[str]:
        out = set(narrow_fns)
        for info in project.modules.values():
            for fn in info.functions.values():
                flow = _NarrowFlow(info, project, sanctioned[info.name], narrow_fns)
                cfg = build_cfg(fn.node)
                per_stmt = run_forward(cfg, flow)
                if self._returns_sanctioned_narrow(cfg, per_stmt, flow):
                    out.add(fn.qualname)
        return out

    def _returns_sanctioned_narrow(self, cfg, per_stmt, flow: _NarrowFlow) -> bool:
        for bid, block in cfg.blocks.items():
            for stmt, entry in zip(block.stmts, per_stmt[bid]):
                if not isinstance(stmt, ast.Return) or stmt.value is None:
                    continue
                if id(stmt) not in flow.sanctioned:
                    continue
                state = dict(entry)
                lvl = flow.eval_expr(stmt.value, state, True, None)
                if lvl >= SANCTIONED:
                    return True
        return False

    # -- emission pass ----------------------------------------------------

    def _emit_module(
        self,
        info: ModuleInfo,
        project: Project,
        sanctioned: set[int],
        narrow_fns: set[str],
    ) -> Iterator[Finding]:
        flow = _NarrowFlow(info, project, sanctioned, narrow_fns)
        for _name, frame in _frames(info.tree):
            cfg = build_cfg(frame)  # type: ignore[arg-type]
            per_stmt = run_forward(cfg, flow)
            for bid, block in cfg.blocks.items():
                for stmt, entry in zip(block.stmts, per_stmt[bid]):
                    yield from self._emit_stmt(info, flow, stmt, entry)

    def _emit_stmt(
        self,
        info: ModuleInfo,
        flow: _NarrowFlow,
        stmt: ast.stmt,
        entry: dict[str, object],
    ) -> Iterator[Finding]:
        sanc = id(stmt) in flow.sanctioned
        emit = _Emit()
        state = dict(entry)
        flow.apply(stmt, state, emit=emit)
        for node, message in emit.events:
            yield self.finding_at(info.path, node, message)
        if sanc:
            return
        # Escape reads: a sanctioned-narrow variable used after its
        # inference_mode block exited.
        seen: set[tuple[str, int]] = set()
        for root in _stmt_value_exprs(stmt):
            for node in ast.walk(root):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and entry.get(node.id) == SANCTIONED
                ):
                    key = (node.id, getattr(node, "lineno", 0))
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.finding_at(
                        info.path,
                        node,
                        f"float32 value {node.id!r} escapes its inference_mode() "
                        "scope; cast back to float64 before leaving the scope",
                    )
