"""Spatial correlation matrices (Eq. 10) with coherent-source fixes.

Backscatter multipath components are *coherent* — they are copies of
one tag reply — so the plain sample covariance is rank-deficient and
plain MUSIC cannot separate them.  Forward-backward averaging restores
rank for a uniform linear array and is standard practice; it is the
de-correlation step implied by the paper's "de-couple multipath
signals" stage.
"""

from __future__ import annotations

import numpy as np


def sample_covariance(snapshots: np.ndarray, valid: np.ndarray | None = None) -> np.ndarray:
    """Sample spatial covariance ``R = E[x x^H]`` over snapshots.

    Args:
        snapshots: ``(K, N)`` complex array, one row per snapshot.
        valid: optional ``(K, N)`` mask; snapshots missing any antenna
            are dropped, and when *every* snapshot has gaps the gaps
            are zero-filled (conservative fallback).

    Returns:
        ``(N, N)`` Hermitian covariance.

    Raises:
        ValueError: when no snapshot is available at all.
    """
    x = np.asarray(snapshots, dtype=np.complex128)
    if x.ndim != 2:
        raise ValueError("snapshots must be (K, N)")
    if valid is not None:
        complete = valid.all(axis=1)
        if complete.any():
            x = x[complete]
        elif not valid.any():
            raise ValueError("no valid snapshots")
        else:
            x = np.where(valid, x, 0.0)
    if x.shape[0] == 0:
        raise ValueError("no valid snapshots")
    # R[i, j] = E[x_i * conj(x_j)] — rows of ``x`` are snapshots.
    return x.T @ x.conj() / x.shape[0]


def forward_backward(r: np.ndarray) -> np.ndarray:
    """Forward-backward averaged covariance ``(R + J R* J) / 2``.

    ``J`` is the exchange matrix.  For a ULA this doubles the effective
    snapshot count and de-correlates coherent path pairs.
    """
    r = np.asarray(r)
    n = r.shape[0]
    j = np.eye(n)[::-1]
    return 0.5 * (r + j @ r.conj() @ j)


def diagonal_load(r: np.ndarray, level: float = 1e-6) -> np.ndarray:
    """Add ``level * trace(R)/N`` to the diagonal for numerical safety."""
    n = r.shape[0]
    return r + np.eye(n) * (level * np.trace(r).real / n)


def spatial_covariance(
    snapshots: np.ndarray,
    valid: np.ndarray | None = None,
    use_forward_backward: bool = True,
    loading: float = 1e-6,
) -> np.ndarray:
    """The full covariance pipeline used by the pseudospectrum stage."""
    r = sample_covariance(snapshots, valid)
    if use_forward_backward:
        r = forward_backward(r)
    return diagonal_load(r, loading)


def spatial_covariance_stack(
    snapshots: np.ndarray,
    valid: np.ndarray | None = None,
    use_forward_backward: bool = True,
    loading: float = 1e-6,
) -> np.ndarray:
    """:func:`spatial_covariance` for a whole stack of dwells at once.

    The per-window snapshot selection (drop incomplete rows when a
    complete one exists, zero-fill the gaps otherwise) becomes a 0/1
    row weighting, and the covariance products, forward-backward
    averaging and diagonal loading all run as one stacked matmul chain
    instead of W separate calls.  A zero-weighted row contributes
    exactly nothing to the Gram product, so each window's matrix equals
    the scalar pipeline's output.

    Args:
        snapshots: ``(W, K, N)`` complex snapshots.
        valid: optional ``(W, K, N)`` observation mask.
        use_forward_backward: apply FB averaging (ULA de-correlation).
        loading: diagonal loading level.

    Returns:
        ``(W, N, N)`` stack of Hermitian covariances.

    Raises:
        ValueError: on a non-3-D stack or a window with no observed
            snapshot at all.
    """
    x = np.asarray(snapshots, dtype=np.complex128)
    if x.ndim != 3:
        raise ValueError("snapshots must be (W, K, N)")
    n_windows, _n_rounds, n = x.shape
    if n_windows == 0:
        return np.zeros((0, n, n), dtype=np.complex128)
    if valid is not None:
        if valid.shape != x.shape:
            raise ValueError("valid must match snapshots")
        complete = valid.all(axis=2)  # (W, K)
        has_complete = complete.any(axis=1)
        if not (has_complete | valid.any(axis=(1, 2))).all():
            raise ValueError("no valid snapshots in some window")
        weights = np.where(has_complete[:, None], complete, True)
        x = np.where(valid, x, 0.0)
    else:
        weights = np.ones(x.shape[:2], dtype=bool)
    xw = x * weights[:, :, None]
    counts = weights.sum(axis=1).astype(np.float64)
    r = np.matmul(xw.transpose(0, 2, 1), xw.conj()) / counts[:, None, None]
    if use_forward_backward:
        j = np.eye(n)[::-1]
        r = 0.5 * (r + j @ r.conj() @ j)
    trace = np.trace(r, axis1=-2, axis2=-1).real
    return r + np.eye(n) * (loading * trace / n)[:, None, None]
