"""RPR013/RPR014 true-negative fixture: the discipline done right.

Writes hold the lock, the check-then-act is atomic under it, and the
blocking calls happen outside the critical section.
"""

import threading


class SharedCache:
    """A cache that honours its own lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._store = {}

    def put(self, key, value):
        """Write under the lock."""
        with self._lock:
            self._store[key] = value

    def ensure(self, key):
        """Atomic check-then-act under the lock."""
        with self._lock:
            if key not in self._store:
                self._store[key] = 0

    def drain(self, queue):
        """Block first, then take the lock for the write."""
        item = queue.get()
        with self._lock:
            self._store["last"] = item

    def snapshot(self):
        """Reads may copy under the lock and process outside it."""
        with self._lock:
            items = dict(self._store)
        return sorted(items)
