"""Smart-home monitoring: streaming activity identification.

The paper motivates M2AI with healthcare and smart-home deployments
that must recognise what several residents are doing in real time.
This example trains a compact model, then simulates a continuous
monitoring session in which the residents switch activities every few
seconds; the trained pipeline classifies each observation window as it
closes, streaming decisions the way a deployment would.

Usage::

    python examples/smart_home_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.core import M2AIConfig, M2AIPipeline
from repro.core.dataset import ActivityDataset
from repro.data import GenerationConfig, SyntheticDatasetGenerator
from repro.motion import SCENARIOS

ACTIVITIES = ("A01", "A03", "A07", "A11")
WINDOW_S = 6.0


def main() -> None:
    rng = np.random.default_rng(3)
    config = GenerationConfig(
        scenario_labels=ACTIVITIES,
        samples_per_class=8,
        duration_s=WINDOW_S,
        seed=3,
    )
    generator = SyntheticDatasetGenerator(config)

    print("Training the monitor on", len(ACTIVITIES), "home activities:")
    for label in ACTIVITIES:
        print(f"  {label}: {SCENARIOS[label].description}")
    dataset = generator.generate()
    train, test = dataset.split(0.2, rng)
    pipeline = M2AIPipeline(M2AIConfig(epochs=35, batch_size=12, seed=3))
    pipeline.fit(train, val=test)
    print(f"Monitor ready (validation accuracy "
          f"{pipeline.evaluate(test).accuracy:.0%}).\n")

    print("Streaming session: residents change activity every window.")
    schedule = [str(rng.choice(ACTIVITIES)) for _ in range(6)]
    hits = 0
    for window_index, truth in enumerate(schedule):
        # Each window is a fresh recording of the scheduled activity —
        # the monitor never saw these executions during training.
        window_cfg = GenerationConfig(
            scenario_labels=(truth,),
            samples_per_class=1,
            duration_s=WINDOW_S,
            seed=1000 + window_index,
        )
        sample = SyntheticDatasetGenerator(window_cfg).generate()
        window = ActivityDataset(samples=sample.samples, labels=sample.labels)
        prediction = pipeline.predict(window)[0]
        ok = prediction == truth
        hits += int(ok)
        t0 = window_index * WINDOW_S
        status = "ok " if ok else "MISS"
        print(f"  [{t0:5.1f}s - {t0 + WINDOW_S:5.1f}s] truth={truth} "
              f"predicted={prediction}  {status}  "
              f"({SCENARIOS[truth].description})")
    print(f"\nStreaming accuracy: {hits}/{len(schedule)}")


if __name__ == "__main__":
    main()
