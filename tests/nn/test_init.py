"""Weight initialisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import glorot_uniform, he_uniform, orthogonal

RNG = np.random.default_rng(0)


class TestGlorot:
    def test_bounds(self):
        w = glorot_uniform((100, 50), RNG)
        limit = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= limit

    def test_fan_override(self):
        w = glorot_uniform((10, 10), RNG, fan_in=1000, fan_out=1000)
        assert np.abs(w).max() <= np.sqrt(6.0 / 2000)

    def test_variance_scaling(self):
        small = glorot_uniform((2000, 10), RNG)
        large = glorot_uniform((10, 10), RNG)
        assert small.std() < large.std()


class TestHe:
    def test_bounds(self):
        w = he_uniform((64, 32), RNG)
        assert np.abs(w).max() <= np.sqrt(6.0 / 64)


class TestOrthogonal:
    @pytest.mark.parametrize("shape", [(8, 8), (12, 6), (6, 12)])
    def test_orthonormal_rows_or_columns(self, shape):
        w = orthogonal(shape, RNG)
        assert w.shape == shape
        if shape[0] >= shape[1]:
            gram = w.T @ w
            np.testing.assert_allclose(gram, np.eye(shape[1]), atol=1e-9)
        else:
            gram = w @ w.T
            np.testing.assert_allclose(gram, np.eye(shape[0]), atol=1e-9)

    def test_norm_preserving(self):
        w = orthogonal((16, 16), RNG)
        x = RNG.normal(size=16)
        assert np.linalg.norm(w @ x) == pytest.approx(np.linalg.norm(x))
