"""Findings baseline: the ratchet that lets CI fail on NEW findings only.

Turning on whole-project rules over a living codebase surfaces
historical findings that are real but not this change's fault.  The
baseline file (``.reprolint-baseline.json``, committed at the repo
root) records those as stable fingerprints with a justification each;
the lint driver subtracts them, so CI goes red only when a change
*introduces* a finding.  ``--update-baseline`` re-records the current
state, and entries whose finding has disappeared are reported as
*stale* (informative, never failing — two CI invocations may share one
baseline while covering different trees).

Fingerprints hash ``relative-path|code|message``, with the path taken
relative to the baseline file's own directory.  That makes the same
finding match whether the linter was invoked as ``lint src`` from the
repo root or with an absolute path from anywhere else — and makes the
fingerprint survive a repo checkout at a different location.
Line/column are deliberately excluded so unrelated edits above a
baselined finding do not un-baseline it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.rules import Finding

__all__ = [
    "BASELINE_FILENAME",
    "Baseline",
    "BaselineEntry",
    "discover_baseline",
    "fingerprint",
    "split_findings",
]

BASELINE_FILENAME = ".reprolint-baseline.json"
"""Canonical name of the committed baseline file."""

_FORMAT_VERSION = 1


def _normalize_path(raw: str, root: Path) -> str:
    """``raw`` relative to ``root``, posix separators, best effort."""
    try:
        rel = os.path.relpath(os.path.abspath(raw), os.path.abspath(str(root)))
    except ValueError:  # pragma: no cover - different drive on windows
        rel = raw
    return rel.replace(os.sep, "/")


def fingerprint(finding: Finding, root: Path) -> str:
    """Stable identity of a finding, independent of line numbers.

    Args:
        finding: the finding to fingerprint.
        root: directory the baseline file lives in; paths are
            normalized relative to it.

    Returns:
        16 hex chars of the sha256 of ``path|code|message``.
    """
    norm = _normalize_path(finding.path, root)
    payload = f"{norm}|{finding.code}|{finding.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding.

    Attributes:
        fingerprint: :func:`fingerprint` of the accepted finding.
        path: root-relative path (informational; the fingerprint is
            authoritative).
        code: rule code.
        message: the finding message at acceptance time.
        justification: why this finding is accepted rather than fixed.
    """

    fingerprint: str
    path: str
    code: str
    message: str
    justification: str

    def as_dict(self) -> dict[str, str]:
        """JSON-ready representation."""
        return {
            "fingerprint": self.fingerprint,
            "path": self.path,
            "code": self.code,
            "message": self.message,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """The parsed baseline file.

    Attributes:
        path: where it was loaded from (None for the empty baseline).
        entries: fingerprint → entry.
    """

    path: Path | None = None
    entries: dict[str, BaselineEntry] = field(default_factory=dict)

    @property
    def root(self) -> Path:
        """Directory paths are normalized against."""
        return self.path.parent if self.path is not None else Path.cwd()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file.

        Raises:
            ValueError: on an unreadable or wrong-version file.
        """
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"cannot read baseline {path}: {exc}") from exc
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"baseline {path} has version {payload.get('version')!r}, "
                f"expected {_FORMAT_VERSION}"
            )
        entries: dict[str, BaselineEntry] = {}
        for raw in payload.get("entries", []):
            entry = BaselineEntry(
                fingerprint=str(raw.get("fingerprint", "")),
                path=str(raw.get("path", "")),
                code=str(raw.get("code", "")),
                message=str(raw.get("message", "")),
                justification=str(raw.get("justification", "")),
            )
            entries[entry.fingerprint] = entry
        return cls(path=path, entries=entries)

    def save(self, path: Path | None = None) -> Path:
        """Write the baseline (sorted, stable diffs) and return the path."""
        target = path or self.path
        if target is None:
            raise ValueError("no baseline path to save to")
        ordered = sorted(
            self.entries.values(), key=lambda e: (e.path, e.code, e.message)
        )
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [e.as_dict() for e in ordered],
        }
        target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return target

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        path: Path,
        previous: "Baseline | None" = None,
        default_justification: str = "accepted pre-existing finding",
    ) -> "Baseline":
        """Build a baseline accepting every given finding.

        Justifications of entries that survive from ``previous`` are
        preserved; new entries get ``default_justification`` (edit the
        file to say something real before committing).
        """
        root = path.parent
        entries: dict[str, BaselineEntry] = {}
        for f in findings:
            fp = fingerprint(f, root)
            old = previous.entries.get(fp) if previous is not None else None
            entries[fp] = BaselineEntry(
                fingerprint=fp,
                path=_normalize_path(f.path, root),
                code=f.code,
                message=f.message,
                justification=(
                    old.justification if old is not None else default_justification
                ),
            )
        return cls(path=path, entries=entries)


def discover_baseline(start: Path) -> Path | None:
    """Walk up from ``start`` looking for :data:`BASELINE_FILENAME`.

    Args:
        start: a linted file or directory; the search begins at it (or
            its parent for files) and ascends to the filesystem root.

    Returns:
        The first baseline file found, or None.
    """
    here = start.resolve()
    if here.is_file():
        here = here.parent
    for candidate in [here, *here.parents]:
        probe = candidate / BASELINE_FILENAME
        if probe.is_file():
            return probe
    return None


def split_findings(
    findings: Sequence[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
    """Partition findings against the baseline.

    Returns:
        ``(new, accepted, stale)``: findings not in the baseline,
        findings matched by it, and baseline entries matched by no
        current finding (informational — possibly covered by a
        different lint invocation).
    """
    root = baseline.root
    new: list[Finding] = []
    accepted: list[Finding] = []
    matched: set[str] = set()
    for f in findings:
        fp = fingerprint(f, root)
        if fp in baseline.entries:
            accepted.append(f)
            matched.add(fp)
        else:
            new.append(f)
    stale = [e for fp, e in sorted(baseline.entries.items()) if fp not in matched]
    return new, accepted, stale
