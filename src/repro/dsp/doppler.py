"""Doppler-shift estimation from intra-dwell phase rotation.

LLRP readers report a Doppler estimate per read (Section III notes the
"low-level data reports, such as the phase and Doppler shift"), and
the FEMO prior work [10] builds its exercise recognition entirely on
such frequency shifts.  This module recovers the same quantity from
our snapshot tensors: within one 400 ms dwell the carrier is fixed, so
the phase rotation rate across the dwell's rounds is the backscatter
Doppler of the tag.

A moving tag at radial velocity ``v`` shifts the backscatter carrier
by ``2 v / lambda`` Hz; in the doubled-phase domain used throughout
the DSP the observed rotation is twice that again, so the estimator
divides the fitted phase rate by the same multiplier MUSIC uses.

Alias limit: phases are sampled once per TDM round (100 ms with four
ports), so the unambiguous one-way Doppler is
``1 / (multiplier * round_s)`` ~ +/-1.25 Hz — radial speeds up to
~0.2 m/s, which covers human limb motion between rounds but not a
sprint.  Faster motion folds, exactly as it would on the real reader's
per-read Doppler field.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.angles import wrap_pm_pi
from repro.dsp.music import PHASE_MULTIPLIER
from repro.dsp.snapshots import TagSnapshots
from repro.hardware.llrp import ReadLog


def doppler_from_phases(
    psi: np.ndarray, times_s: np.ndarray, phase_multiplier: float = PHASE_MULTIPLIER
) -> float:
    """Doppler (Hz) from a short run of doubled phases at one carrier.

    Fits the unwrapped phase-vs-time slope; the multiplier converts
    the doubled backscatter rotation back to one-way Doppler.

    Args:
        psi: doubled phases, radians, time-ordered.
        times_s: matching timestamps.
        phase_multiplier: domain multiplier (4 = round trip x ambiguity
            folding).

    Returns:
        Estimated one-way Doppler shift in Hz (0 for < 2 samples).
    """
    psi = np.asarray(psi, dtype=np.float64)
    times = np.asarray(times_s, dtype=np.float64)
    if psi.shape != times.shape:
        raise ValueError("psi and times must align")
    if psi.size < 2:
        return 0.0
    increments = wrap_pm_pi(np.diff(psi))
    unwrapped = np.concatenate([[psi[0]], psi[0] + np.cumsum(increments)])
    dt = times - times[0]
    denom = float(np.sum((dt - dt.mean()) ** 2))
    if denom <= 0:
        return 0.0
    slope = float(np.sum((dt - dt.mean()) * (unwrapped - unwrapped.mean())) / denom)
    # slope [rad/s] = multiplier/2 * 2*pi * f_doppler  (the doubled
    # domain rotates at twice the physical backscatter rate, which is
    # itself twice the one-way rate).
    return slope / (np.pi * phase_multiplier)


def dwell_doppler(snapshots: TagSnapshots, round_s: float) -> np.ndarray:
    """Per-frame, per-antenna Doppler estimates, ``(F, N)`` Hz.

    Args:
        snapshots: one tag's dwell-aligned snapshots.
        round_s: time between consecutive snapshots (one TDM round).

    Returns:
        Doppler per frame and antenna; unobserved entries are 0.
    """
    frames, rounds, n_ant = snapshots.z.shape
    out = np.zeros((frames, n_ant))
    times = np.arange(rounds) * round_s
    for f in range(frames):
        for a in range(n_ant):
            mask = snapshots.valid[f, :, a]
            if mask.sum() < 2:
                continue
            psi = np.angle(snapshots.z[f, mask, a])
            out[f, a] = doppler_from_phases(psi, times[mask])
    return out


class DopplerFeaturizer:
    """Doppler frames: the FEMO-style featurisation, as an extension.

    Produces a ``"doppler"`` channel of shape ``(F, n_tags, N)``.  Not
    part of the paper's Fig. 16 comparison set, but useful to quantify
    how much the pseudospectrum adds over pure motion-rate features.
    """

    name = "doppler"

    def transform(
        self,
        log: ReadLog,
        psi: np.ndarray,
        n_frames: int | None = None,
        label: str | None = None,
    ):
        """Featurise ``log`` into Doppler-rate frames."""
        from repro.dsp.frames import FeatureFrames, tag_snapshot_set

        snapshot_sets = tag_snapshot_set(log, psi, n_frames)
        round_s = log.meta.slot_s * log.meta.n_antennas
        frames = snapshot_sets[0].n_frames
        n_tags = len(snapshot_sets)
        n_ant = log.meta.n_antennas
        out = np.zeros((frames, n_tags, n_ant))
        for k, snaps in enumerate(snapshot_sets):
            out[:, k, :] = dwell_doppler(snaps, round_s)
        return FeatureFrames(channels={"doppler": out}, label=label)
