"""Fig. 17: learning-architecture ablation — the combined CNN+LSTM
against CNN-only and LSTM-only on the same dataset."""

from repro.eval import run_fig17


def test_fig17_architectures(run_experiment):
    result = run_experiment(run_fig17)
    measured = result.measured_by_name()
    full = measured["M2AI (CNN+LSTM)"]
    # Shape check: the combined architecture is competitive with or
    # better than both ablations (the paper reports +30/+25 points at
    # hardware scale).
    assert full >= max(measured["CNN only"], measured["LSTM only"]) - 0.1
