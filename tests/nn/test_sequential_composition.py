"""Composite network gradients: the exact configurations M2AI uses."""

from __future__ import annotations

import numpy as np

from repro.nn import (
    LSTM,
    Conv1d,
    Dense,
    Flatten,
    LastStep,
    MaxPool1d,
    ReLU,
    Sequential,
    check_module_gradients,
)

RNG = np.random.default_rng(7)


class TestCompositeGradients:
    def test_conv_relu_pool_dense_chain(self):
        net = Sequential(
            Conv1d(2, 3, 5, RNG, stride=1, padding=2),
            ReLU(),
            MaxPool1d(2),
            Conv1d(3, 4, 3, RNG, stride=2, padding=1),
            ReLU(),
            Flatten(),
            Dense(4 * 5, 6, RNG),
        )
        x = RNG.normal(size=(3, 2, 20)) * 3  # scaled away from pool ties
        errors = check_module_gradients(net, x, RNG)
        assert max(errors.values()) < 1e-6

    def test_stacked_lstm_chain(self):
        net = Sequential(LSTM(3, 5, RNG), LSTM(5, 4, RNG), LastStep(), Dense(4, 2, RNG))
        x = RNG.normal(size=(2, 6, 3))
        errors = check_module_gradients(net, x, RNG)
        assert max(errors.values()) < 1e-6

    def test_deep_chain_stable(self):
        """Gradients through a deeper stack stay finite and non-zero."""
        net = Sequential(
            Dense(8, 16, RNG, relu_init=True), ReLU(),
            Dense(16, 16, RNG, relu_init=True), ReLU(),
            Dense(16, 16, RNG, relu_init=True), ReLU(),
            Dense(16, 4, RNG),
        )
        x = RNG.normal(size=(5, 8))
        y = net(x)
        net.zero_grad()
        net.backward(np.ones_like(y))
        grads = [np.abs(p.grad).max() for p in net.parameters()]
        assert all(np.isfinite(g) for g in grads)
        assert max(grads) > 0
