"""M2AI: Multipath-aware Multi-object Activity Identification.

A full-system reproduction of Fan et al., "Multiple Object Activity
Identification using RFIDs: A Multipath-Aware Deep Learning Solution"
(IEEE ICDCS 2018), including the RFID backscatter substrate the paper
runs on.

Package map:

* :mod:`repro.geometry`  — planar geometry and rooms
* :mod:`repro.channel`   — image-source multipath backscatter channel
* :mod:`repro.hardware`  — tags, antenna array, hopping, reader, LLRP
* :mod:`repro.motion`    — body kinematics and the 12 activity scenarios
* :mod:`repro.dsp`       — calibration, MUSIC, periodogram, frames
* :mod:`repro.nn`        — from-scratch numpy deep-learning framework
* :mod:`repro.ml`        — the ten classical baselines + HMM + metrics
* :mod:`repro.core`      — the M2AI network, trainer, pipeline
* :mod:`repro.data`      — synthetic dataset generation
* :mod:`repro.eval`      — one driver per paper table/figure

Quickstart::

    from repro.data import SyntheticDatasetGenerator, tiny_generation
    from repro.core import M2AIPipeline

    dataset = SyntheticDatasetGenerator(tiny_generation()).generate()
    train, test = dataset.split(0.2)
    pipeline = M2AIPipeline().fit(train, val=test)
    print(pipeline.evaluate(test).accuracy)
"""

from repro.core import M2AIConfig, M2AIPipeline
from repro.data import GenerationConfig, SyntheticDatasetGenerator

__version__ = "1.0.0"

__all__ = [
    "GenerationConfig",
    "M2AIConfig",
    "M2AIPipeline",
    "SyntheticDatasetGenerator",
    "__version__",
]
