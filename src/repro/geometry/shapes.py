"""Planar shapes and intersection predicates.

Path blockage in the channel model reduces to one question: does the
straight segment between two points pass through a person's body
(a disc) or a piece of furniture?  The predicates here answer that
without allocating; they are called in the inner loop of the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.vec import Vec2


@dataclass(frozen=True)
class Segment:
    """Directed line segment from ``a`` to ``b``."""

    a: Vec2
    b: Vec2

    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.a.distance_to(self.b)

    def midpoint(self) -> Vec2:
        """Point halfway along the segment."""
        return self.a.lerp(self.b, 0.5)

    def point_at(self, t: float) -> Vec2:
        """Point at parameter ``t`` (``0`` -> ``a``, ``1`` -> ``b``)."""
        return self.a.lerp(self.b, t)

    def distance_to_point(self, p: Vec2) -> float:
        """Shortest distance from ``p`` to any point on the segment."""
        d = self.b - self.a
        len_sq = d.norm_sq()
        if len_sq == 0.0:
            return self.a.distance_to(p)
        t = (p - self.a).dot(d) / len_sq
        t = min(1.0, max(0.0, t))
        return self.point_at(t).distance_to(p)

    def intersects_circle(self, center: Vec2, radius: float) -> bool:
        """True when the segment passes through the given disc."""
        return self.distance_to_point(center) <= radius

    def intersects_segment(self, other: "Segment") -> bool:
        """True when the two segments share at least one point."""
        d1 = self.b - self.a
        d2 = other.b - other.a
        denom = d1.cross(d2)
        diff = other.a - self.a
        if abs(denom) < 1e-12:
            # Parallel: overlap only if collinear and ranges intersect.
            if abs(diff.cross(d1)) > 1e-12:
                return False
            t0 = diff.dot(d1) / d1.norm_sq() if d1.norm_sq() > 0 else 0.0
            t1 = t0 + d2.dot(d1) / d1.norm_sq() if d1.norm_sq() > 0 else t0
            lo, hi = min(t0, t1), max(t0, t1)
            return hi >= 0.0 and lo <= 1.0
        t = diff.cross(d2) / denom
        u = diff.cross(d1) / denom
        return 0.0 <= t <= 1.0 and 0.0 <= u <= 1.0


@dataclass(frozen=True)
class Circle:
    """A disc: person torso cross-section or a round scatterer."""

    center: Vec2
    radius: float

    def contains(self, p: Vec2) -> bool:
        """True when ``p`` lies inside or on the circle."""
        return self.center.distance_to(p) <= self.radius

    def blocks(self, seg: Segment) -> bool:
        """True when ``seg`` crosses the disc."""
        return seg.intersects_circle(self.center, self.radius)


@dataclass(frozen=True)
class Rectangle:
    """Axis-aligned rectangle ``[x0, x1] x [y0, y1]``."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError("rectangle must satisfy x0 <= x1 and y0 <= y1")

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.y1 - self.y0

    def center(self) -> Vec2:
        """Centre point of the rectangle."""
        return Vec2((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains(self, p: Vec2, margin: float = 0.0) -> bool:
        """True when ``p`` lies inside, at least ``margin`` from every wall."""
        return (
            self.x0 + margin <= p.x <= self.x1 - margin
            and self.y0 + margin <= p.y <= self.y1 - margin
        )

    def clamp(self, p: Vec2, margin: float = 0.0) -> Vec2:
        """The nearest point to ``p`` inside the rectangle (with margin)."""
        return Vec2(
            min(max(p.x, self.x0 + margin), self.x1 - margin),
            min(max(p.y, self.y0 + margin), self.y1 - margin),
        )

    def mirror(self, p: Vec2, wall: str) -> Vec2:
        """Image of ``p`` reflected across one wall.

        The image-source method replaces a single wall reflection by a
        straight path from the mirrored source.

        Args:
            p: source point.
            wall: one of ``"left"``, ``"right"``, ``"bottom"``, ``"top"``.

        Returns:
            The mirrored point.

        Raises:
            ValueError: for an unknown wall name.
        """
        if wall == "left":
            return Vec2(2.0 * self.x0 - p.x, p.y)
        if wall == "right":
            return Vec2(2.0 * self.x1 - p.x, p.y)
        if wall == "bottom":
            return Vec2(p.x, 2.0 * self.y0 - p.y)
        if wall == "top":
            return Vec2(p.x, 2.0 * self.y1 - p.y)
        raise ValueError(f"unknown wall {wall!r}")


WALLS = ("left", "right", "bottom", "top")


def deg2rad(deg: float) -> float:
    """Degrees to radians."""
    return deg * math.pi / 180.0


def rad2deg(rad: float) -> float:
    """Radians to degrees."""
    return rad * 180.0 / math.pi
