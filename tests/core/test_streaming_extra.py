"""Streaming identifier plumbing that needs no trained model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import M2AIPipeline
from repro.core.streaming import StreamingIdentifier, WindowDecision


class TestWindowDecision:
    def test_frozen_record(self):
        decision = WindowDecision(0.0, 6.0, "A01", 0.9, 120)
        with pytest.raises(AttributeError):
            decision.label = "A02"  # type: ignore[misc]

    def test_fields(self):
        decision = WindowDecision(2.0, 8.0, "A05", 0.75, 240)
        assert decision.t_end_s - decision.t_start_s == 6.0
        assert decision.confidence == 0.75


class TestDefaults:
    def test_default_hop_equals_window(self):
        identifier = StreamingIdentifier(M2AIPipeline(), window_s=4.0)
        assert identifier.hop_s is None  # resolved to window at identify()

    def test_min_reads_guard(self):
        identifier = StreamingIdentifier(M2AIPipeline(), min_reads=10)
        assert identifier.min_reads == 10
