"""Extension: per-window serving latency (the paper's real-time claim)."""

from repro.eval import run_ext_realtime


def test_ext_realtime_margin(run_experiment):
    result = run_experiment(run_ext_realtime)
    measured = result.measured_by_name()
    # Preprocessing + inference must fit inside one observation window.
    assert measured["real-time margin (window / total)"] > 1.0
