"""Fig. 10: phase calibration is make-or-break (97% vs 52% in the
paper).  The same recordings are featurised with and without Eq. 1."""

from repro.eval import run_fig10


def test_fig10_phase_calibration(run_experiment):
    result = run_experiment(run_fig10)
    measured = result.measured_by_name()
    # Shape check: calibration never hurts.  The paper's 45-point gap is
    # data-scale dependent (amplitude features survive phase scrambling
    # and saturate small-corpus accuracy — see EXPERIMENTS.md), so at
    # quick scale we assert non-inferiority rather than dominance.
    assert measured["with calibration"] >= measured["without calibration"] - 0.05
