"""Hypothesis-checked invariants of the motion layer."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Vec2, make_laboratory
from repro.motion import ATTACHMENTS, PRIMITIVES, PersonProfile, get_primitive, perform

primitive_names = st.sampled_from(sorted(PRIMITIVES))
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestKinematicBounds:
    @given(primitive_names, seeds)
    @settings(max_examples=30, deadline=None)
    def test_tags_stay_near_the_body(self, name, seed):
        """No attachment may ever fly metres away from the torso —
        arms have finite length."""
        t = np.linspace(0.0, 6.0, 120)
        motion = perform(
            get_primitive(name), Vec2(5.0, 5.0), t, np.random.default_rng(seed)
        )
        for attachment in ATTACHMENTS:
            offsets = motion.tag_position(attachment) - motion.center
            assert np.linalg.norm(offsets, axis=1).max() < 1.5

    @given(primitive_names, seeds)
    @settings(max_examples=30, deadline=None)
    def test_human_speed_limit(self, name, seed):
        """Frame-to-frame tag velocity stays below a sprint (~6 m/s)."""
        dt = 0.05
        t = np.arange(0.0, 6.0, dt)
        motion = perform(
            get_primitive(name), Vec2(5.0, 5.0), t, np.random.default_rng(seed)
        )
        hand = motion.tag_position("hand")
        speed = np.linalg.norm(np.diff(hand, axis=0), axis=1) / dt
        assert speed.max() < 6.0

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_profiles_physical(self, seed):
        profile = PersonProfile.random(np.random.default_rng(seed))
        assert 0.1 < profile.torso_radius < 0.3
        assert 0.5 < profile.reach_scale < 1.5
        assert 0.5 < profile.tempo_scale < 1.5


class TestSceneInvariants:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_instances_keep_people_in_the_room(self, seed):
        from repro.hardware import UniformLinearArray
        from repro.motion import SCENARIOS, build_instance

        room = make_laboratory()
        array = UniformLinearArray(center=Vec2(room.bounds.width / 2.0, 0.3))
        rng = np.random.default_rng(seed)
        label = sorted(SCENARIOS)[seed % 12]
        instance = build_instance(
            SCENARIOS[label], array, room, duration_s=2.0, slot_s=0.025, rng=rng
        )
        for body in instance.scene.bodies:
            xs, ys = body.positions[:, 0], body.positions[:, 1]
            # Anchors are placed with a 0.5 m margin; motion may lean a
            # body slightly further but never through a wall.
            assert xs.min() > room.bounds.x0 - 0.5
            assert xs.max() < room.bounds.x1 + 0.5
            assert ys.min() > room.bounds.y0 - 0.5
            assert ys.max() < room.bounds.y1 + 0.5
